//! The host abstraction: who actually runs VRIs.
//!
//! The paper's VRI monitor "creates or deletes VRIs via the function calls
//! `vfork()` and `kill()`" (§3.3) and binds each to a CPU core. How a VRI
//! becomes a running entity is host-specific: the discrete-event testbed
//! registers a simulated process on a simulated core, while the real runtime
//! spawns an OS thread and (best-effort) pins it. LVRM only needs the verbs
//! below.

use std::collections::{HashMap, HashSet};

use lvrm_ipc::channels::ControlEvent;
use lvrm_ipc::{Full, VriEndpoint};
use lvrm_net::{FlowKey, Frame};
use lvrm_router::VirtualRouter;

use crate::repl::ReplicaLedger;
use crate::topology::CoreId;
use crate::vri::{encode_heartbeat, LVRM_CTRL_ID};
use crate::{VrId, VriId};

/// Everything a host needs to start one VRI.
#[derive(Clone, Copy, Debug)]
pub struct VriSpec {
    pub vr: VrId,
    pub vri: VriId,
    /// The dedicated core ("to avoid the contention of multiple processes
    /// for a single CPU core, it is important to associate a CPU core with
    /// only one VRI", §3.2).
    pub core: CoreId,
}

/// Spawns and kills VRIs on behalf of the VRI monitor.
pub trait VriHost {
    /// Start a VRI: bind it to `spec.core`, give it its queue endpoint and
    /// its router instance, and begin its poll loop.
    fn spawn_vri(
        &mut self,
        spec: VriSpec,
        endpoint: VriEndpoint<Frame>,
        router: Box<dyn VirtualRouter>,
    );

    /// Stop the VRI (the paper's `kill()`); the monitor destroys the queues
    /// afterwards ("kill the VRI … destroy all queues and clear allocated
    /// memory", Fig. 3.2).
    fn kill_vri(&mut self, vr: VrId, vri: VriId);

    /// Hand back a dead VRI's queue endpoint so the supervisor can drain the
    /// frames that were in flight when it died. Hosts that cannot recover
    /// the endpoint (e.g. it lived in another address space) return `None`
    /// and the supervisor counts those frames as `crash_lost`.
    fn reap_endpoint(&mut self, vri: VriId) -> Option<VriEndpoint<Frame>> {
        let _ = vri;
        None
    }
}

/// A no-op host for unit tests: records spawn/kill calls.
#[derive(Default)]
pub struct RecordingHost {
    pub spawned: Vec<VriSpec>,
    pub killed: Vec<(VrId, VriId)>,
    /// Endpoints of live VRIs, so tests can drive them manually.
    pub endpoints: Vec<(VriId, VriEndpoint<Frame>, Box<dyn VirtualRouter>)>,
    /// Endpoints of killed or crashed VRIs, awaiting `reap_endpoint`.
    pub reapable: Vec<(VriId, VriEndpoint<Frame>)>,
    /// VRIs wedged by fault injection: `pump` skips them entirely, so they
    /// neither service frames nor emit heartbeats.
    pub stalled: HashSet<VriId>,
    /// VRIs whose upstream control path is lossy: serviced normally, but no
    /// heartbeat is emitted for them.
    pub ctrl_mute: HashSet<VriId>,
    /// Emit one heartbeat per serviced endpoint per `pump` call (tests
    /// control beat cadence by how often they pump). Off by default so
    /// existing control-plane tests see no extra events.
    pub heartbeats: bool,
    /// Routed frames a full egress queue refused, at most one per VRI: the
    /// instance retries it (and pulls no new work) until LVRM makes room
    /// via `poll_egress`, the way a real VRI blocks in `toLVRM()`.
    pub egress_backlog: Vec<(VriId, Frame)>,
    /// State-compute replication: when set, every serviced frame is recorded
    /// in the VRI's [`ReplicaLedger`], LVSU batches arriving on the control
    /// queue are folded into it, and pending deltas are flushed to LVRM at
    /// the end of each `pump` pass.
    pub replicate: bool,
    /// Per-VRI replica ledgers (lazily created on first serviced frame or
    /// folded batch). Tests inspect these to check replica convergence.
    pub ledgers: HashMap<VriId, ReplicaLedger>,
    /// Monotonic pump counter used as the `last_seen_ns` stamp for observed
    /// flows; the recording host has no clock of its own.
    pub pump_ticks: u64,
}

impl VriHost for RecordingHost {
    fn spawn_vri(
        &mut self,
        spec: VriSpec,
        endpoint: VriEndpoint<Frame>,
        router: Box<dyn VirtualRouter>,
    ) {
        self.spawned.push(spec);
        self.endpoints.push((spec.vri, endpoint, router));
        self.stalled.remove(&spec.vri);
        self.ctrl_mute.remove(&spec.vri);
    }

    fn kill_vri(&mut self, vr: VrId, vri: VriId) {
        self.killed.push((vr, vri));
        if let Some(pos) = self.endpoints.iter().position(|(id, _, _)| *id == vri) {
            let (_, mut endpoint, _) = self.endpoints.remove(pos);
            self.flush_backlog(vri, &mut endpoint);
            endpoint.detach();
            self.reapable.push((vri, endpoint));
        }
    }

    fn reap_endpoint(&mut self, vri: VriId) -> Option<VriEndpoint<Frame>> {
        let pos = self.reapable.iter().position(|(id, _)| *id == vri)?;
        Some(self.reapable.remove(pos).1)
    }
}

impl RecordingHost {
    /// A recording host that emits heartbeats from `pump` (one per serviced
    /// endpoint per call), for supervision tests.
    pub fn with_heartbeats() -> RecordingHost {
        RecordingHost { heartbeats: true, ..Default::default() }
    }

    /// A recording host whose VRIs keep replica ledgers: serviced frames are
    /// observed per flow, LVSU batches folded, and deltas flushed upstream
    /// each `pump`. For state-compute replication tests.
    pub fn with_replication() -> RecordingHost {
        RecordingHost { replicate: true, ..Default::default() }
    }

    /// Run every live VRI's loop once: drain control then data, process each
    /// frame through the router, and push forwarded frames back. Returns the
    /// number of frames processed. This makes the recording host a complete
    /// single-threaded in-process "runtime" for integration tests.
    pub fn pump(&mut self) -> usize {
        use lvrm_ipc::channels::Work;
        let mut processed = 0;
        self.pump_ticks += 1;
        let now_ns = self.pump_ticks;
        for (vri, endpoint, router) in &mut self.endpoints {
            if self.stalled.contains(vri) {
                continue;
            }
            if self.heartbeats && !self.ctrl_mute.contains(vri) {
                let _ = endpoint.ctrl_tx.try_send(encode_heartbeat(*vri));
            }
            // A frame refused by a full egress queue goes first; while it
            // waits the instance pulls no new work. Matters under `vlink`,
            // where a ring steal is not bounded by the p2p queue depth.
            if let Some(pos) = self.egress_backlog.iter().position(|(id, _)| id == vri) {
                let (_, frame) = self.egress_backlog.remove(pos);
                if let Err(Full(frame)) = endpoint.data_tx.try_send(frame) {
                    self.egress_backlog.push((*vri, frame));
                    continue;
                }
            }
            while let Some(work) = endpoint.next_work() {
                match work {
                    Work::Control(ev) => {
                        if self.replicate && crate::repl::is_state_update(&ev.payload) {
                            if let Ok((origin, updates)) = crate::repl::decode_batch(&ev.payload) {
                                self.ledgers
                                    .entry(*vri)
                                    .or_insert_with(|| ReplicaLedger::new(vri.0))
                                    .fold_batch(origin, &updates);
                            }
                        }
                    }
                    Work::Data(mut frame) => {
                        processed += 1;
                        if self.replicate {
                            if let Some(key) = FlowKey::from_frame(&frame) {
                                self.ledgers
                                    .entry(*vri)
                                    .or_insert_with(|| ReplicaLedger::new(vri.0))
                                    .observe(key, frame.len() as u64, now_ns);
                            }
                        }
                        if let lvrm_router::RouterAction::Forward { .. } =
                            router.process(&mut frame)
                        {
                            if let Err(Full(frame)) = endpoint.data_tx.try_send(frame) {
                                self.egress_backlog.push((*vri, frame));
                                break;
                            }
                        }
                    }
                }
            }
            // Flush this pass's per-flow deltas upstream. A full control
            // queue silently drops the batch: LVRM only charges identity E
            // on receipt, so nothing is ever double-counted.
            if self.replicate {
                if let Some(ledger) = self.ledgers.get_mut(vri) {
                    if let Some(buf) = ledger.flush() {
                        let _ =
                            endpoint.ctrl_tx.try_send(ControlEvent::new(vri.0, LVRM_CTRL_ID, buf));
                    }
                }
            }
        }
        processed
    }

    /// Simulate a VRI process crash: the endpoint detaches (as the real
    /// process unwinding would) but stays reapable so the supervisor can
    /// drain its in-flight frames. Unlike `kill_vri` this is not monitor
    /// work — nothing is recorded in `killed`.
    pub fn crash_vri(&mut self, vri: VriId) {
        if let Some(pos) = self.endpoints.iter().position(|(id, _, _)| *id == vri) {
            let (_, mut endpoint, _) = self.endpoints.remove(pos);
            self.flush_backlog(vri, &mut endpoint);
            endpoint.detach();
            self.reapable.push((vri, endpoint));
        }
        // Un-flushed per-flow deltas die with the process; they were never
        // emitted, so identity E is untouched. Books stay for inspection.
        if let Some(ledger) = self.ledgers.get_mut(&vri) {
            ledger.drop_pending();
        }
    }

    /// Push the VRI's parked egress frame (if any) out before its endpoint
    /// goes away; there is at most one, and if the queue is still full it
    /// dies with the process like any other in-flight frame.
    fn flush_backlog(&mut self, vri: VriId, endpoint: &mut VriEndpoint<Frame>) {
        if let Some(pos) = self.egress_backlog.iter().position(|(id, _)| *id == vri) {
            let (_, frame) = self.egress_backlog.remove(pos);
            let _ = endpoint.data_tx.try_send(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_ipc::QueueKind;
    use lvrm_router::{FastVr, RouteTable};

    fn frame() -> Frame {
        lvrm_net::FrameBuilder::new(
            std::net::Ipv4Addr::new(10, 0, 1, 1),
            std::net::Ipv4Addr::new(10, 0, 2, 1),
        )
        .udp(1, 2, &[])
    }

    #[test]
    fn recording_host_tracks_lifecycle() {
        let mut host = RecordingHost::default();
        let (mut chans, endpoint) =
            lvrm_ipc::channels::vri_channels::<Frame>(QueueKind::Lamport, 8, 4);
        let vr = FastVr::new("t", RouteTable::new());
        let spec = VriSpec { vr: VrId(0), vri: VriId(1), core: CoreId(2) };
        host.spawn_vri(spec, endpoint, Box::new(vr));
        assert_eq!(host.spawned.len(), 1);
        assert_eq!(host.endpoints.len(), 1);

        // No routes: frames are dropped, not returned.
        chans.data_tx.try_send(frame()).unwrap();
        assert_eq!(host.pump(), 1);
        assert!(chans.data_rx.try_recv().is_none());

        host.kill_vri(VrId(0), VriId(1));
        assert!(host.endpoints.is_empty());
        assert!(!chans.endpoint_attached(), "kill detaches the endpoint");
    }

    #[test]
    fn crashed_endpoint_is_reapable_with_frames_intact() {
        let mut host = RecordingHost::default();
        let (mut chans, endpoint) =
            lvrm_ipc::channels::vri_channels::<Frame>(QueueKind::Lamport, 8, 4);
        let vr = FastVr::new("t", RouteTable::new());
        host.spawn_vri(
            VriSpec { vr: VrId(0), vri: VriId(1), core: CoreId(2) },
            endpoint,
            Box::new(vr),
        );
        chans.data_tx.try_send(frame()).unwrap();
        chans.data_tx.try_send(frame()).unwrap();

        host.crash_vri(VriId(1));
        assert!(!chans.endpoint_attached());
        assert!(host.killed.is_empty(), "a crash is not monitor work");
        let mut ep = host.reap_endpoint(VriId(1)).expect("endpoint reapable");
        let mut drained = Vec::new();
        ep.data_rx.try_recv_batch(&mut drained, usize::MAX);
        assert_eq!(drained.len(), 2, "in-flight frames survive the crash");
        assert!(host.reap_endpoint(VriId(1)).is_none(), "reaping is one-shot");
    }

    #[test]
    fn stalled_vri_is_skipped_by_pump() {
        let mut host = RecordingHost::with_heartbeats();
        let (mut chans, endpoint) =
            lvrm_ipc::channels::vri_channels::<Frame>(QueueKind::Lamport, 8, 4);
        let vr = FastVr::new("t", RouteTable::new());
        host.spawn_vri(
            VriSpec { vr: VrId(0), vri: VriId(1), core: CoreId(2) },
            endpoint,
            Box::new(vr),
        );
        chans.data_tx.try_send(frame()).unwrap();
        host.stalled.insert(VriId(1));
        assert_eq!(host.pump(), 0, "stalled VRI services nothing");
        assert!(chans.ctrl_rx.try_recv().is_none(), "and emits no heartbeat");
        host.stalled.remove(&VriId(1));
        assert_eq!(host.pump(), 1);
        assert!(chans.ctrl_rx.try_recv().is_some(), "heartbeat resumes");
    }
}
