//! The host abstraction: who actually runs VRIs.
//!
//! The paper's VRI monitor "creates or deletes VRIs via the function calls
//! `vfork()` and `kill()`" (§3.3) and binds each to a CPU core. How a VRI
//! becomes a running entity is host-specific: the discrete-event testbed
//! registers a simulated process on a simulated core, while the real runtime
//! spawns an OS thread and (best-effort) pins it. LVRM only needs the two
//! verbs below.

use lvrm_ipc::VriEndpoint;
use lvrm_net::Frame;
use lvrm_router::VirtualRouter;

use crate::topology::CoreId;
use crate::{VrId, VriId};

/// Everything a host needs to start one VRI.
#[derive(Clone, Copy, Debug)]
pub struct VriSpec {
    pub vr: VrId,
    pub vri: VriId,
    /// The dedicated core ("to avoid the contention of multiple processes
    /// for a single CPU core, it is important to associate a CPU core with
    /// only one VRI", §3.2).
    pub core: CoreId,
}

/// Spawns and kills VRIs on behalf of the VRI monitor.
pub trait VriHost {
    /// Start a VRI: bind it to `spec.core`, give it its queue endpoint and
    /// its router instance, and begin its poll loop.
    fn spawn_vri(
        &mut self,
        spec: VriSpec,
        endpoint: VriEndpoint<Frame>,
        router: Box<dyn VirtualRouter>,
    );

    /// Stop the VRI (the paper's `kill()`); the monitor destroys the queues
    /// afterwards ("kill the VRI … destroy all queues and clear allocated
    /// memory", Fig. 3.2).
    fn kill_vri(&mut self, vr: VrId, vri: VriId);
}

/// A no-op host for unit tests: records spawn/kill calls.
#[derive(Default)]
pub struct RecordingHost {
    pub spawned: Vec<VriSpec>,
    pub killed: Vec<(VrId, VriId)>,
    /// Endpoints of live VRIs, so tests can drive them manually.
    pub endpoints: Vec<(VriId, VriEndpoint<Frame>, Box<dyn VirtualRouter>)>,
}

impl VriHost for RecordingHost {
    fn spawn_vri(
        &mut self,
        spec: VriSpec,
        endpoint: VriEndpoint<Frame>,
        router: Box<dyn VirtualRouter>,
    ) {
        self.spawned.push(spec);
        self.endpoints.push((spec.vri, endpoint, router));
    }

    fn kill_vri(&mut self, vr: VrId, vri: VriId) {
        self.killed.push((vr, vri));
        self.endpoints.retain(|(id, _, _)| *id != vri);
    }
}

impl RecordingHost {
    /// Run every live VRI's loop once: drain control then data, process each
    /// frame through the router, and push forwarded frames back. Returns the
    /// number of frames processed. This makes the recording host a complete
    /// single-threaded in-process "runtime" for integration tests.
    pub fn pump(&mut self) -> usize {
        use lvrm_ipc::channels::Work;
        let mut processed = 0;
        for (_, endpoint, router) in &mut self.endpoints {
            while let Some(work) = endpoint.next_work() {
                match work {
                    Work::Control(_ev) => {}
                    Work::Data(mut frame) => {
                        processed += 1;
                        if let lvrm_router::RouterAction::Forward { .. } =
                            router.process(&mut frame)
                        {
                            let _ = endpoint.data_tx.try_send(frame);
                        }
                    }
                }
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_ipc::QueueKind;
    use lvrm_router::{FastVr, RouteTable};

    #[test]
    fn recording_host_tracks_lifecycle() {
        let mut host = RecordingHost::default();
        let (mut chans, endpoint) =
            lvrm_ipc::channels::vri_channels::<Frame>(QueueKind::Lamport, 8, 4);
        let vr = FastVr::new("t", RouteTable::new());
        let spec = VriSpec { vr: VrId(0), vri: VriId(1), core: CoreId(2) };
        host.spawn_vri(spec, endpoint, Box::new(vr));
        assert_eq!(host.spawned.len(), 1);
        assert_eq!(host.endpoints.len(), 1);

        // No routes: frames are dropped, not returned.
        let f = lvrm_net::FrameBuilder::new(
            std::net::Ipv4Addr::new(10, 0, 1, 1),
            std::net::Ipv4Addr::new(10, 0, 2, 1),
        )
        .udp(1, 2, &[]);
        chans.data_tx.try_send(f).unwrap();
        assert_eq!(host.pump(), 1);
        assert!(chans.data_rx.try_recv().is_none());

        host.kill_vri(VrId(0), VriId(1));
        assert!(host.endpoints.is_empty());
    }
}
