//! Core-allocation policies (paper §3.2, Fig. 3.2).
//!
//! The VR monitor periodically (≥1 s apart) asks a policy whether each VR
//! should gain or lose a core. The paper's pseudocode:
//!
//! ```text
//! for each VR:
//!   if arrival rate <= threshold(service rate w/ 1 less VRIs):  destroy VRI
//!   else if threshold(service rate) <= arrival rate:            create VRI
//! ```
//!
//! With **fixed thresholds**, `threshold(c VRIs) = c × per-core-rate` (a
//! configured constant — Experiment 2c uses 60 Kfps per core). With
//! **dynamic thresholds**, the per-core capacity is the *measured* service
//! rate of the VR's VRIs, so VRs with heavier per-frame work automatically
//! earn more cores (Experiment 2e's 1:2 service-rate ratio).

use lvrm_ipc::PressureLevel;

/// A VR's load picture at decision time.
#[derive(Clone, Copy, Debug)]
pub struct VrLoadView {
    /// Smoothed arrival rate, frames/second (§3.2's EWMA arrival rate).
    pub arrival_rate: f64,
    /// Measured per-VRI service rate, frames/second, when the dynamic-
    /// threshold machinery has a valid estimate (§3.6).
    pub service_rate_per_vri: Option<f64>,
    /// VRIs (= cores) currently allocated to the VR.
    pub current_vris: usize,
    /// Watermark-derived queue pressure from the last burst refresh
    /// (DESIGN.md §8). `Overloaded` means at least one data queue crossed the
    /// high watermark and has not drained back below the low one — direct
    /// evidence the smoothed rates understate demand.
    pub pressure: PressureLevel,
}

/// The policy's verdict for one VR at one decision point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocDecision {
    /// Allocate one more core (spawn a VRI).
    Grow,
    /// Release one core (kill a VRI).
    Shrink,
    /// Keep the current allocation.
    Hold,
}

impl AllocDecision {
    /// Stable lowercase name (event-log and metrics surface).
    pub fn name(self) -> &'static str {
        match self {
            AllocDecision::Grow => "grow",
            AllocDecision::Shrink => "shrink",
            AllocDecision::Hold => "hold",
        }
    }
}

/// A core-allocation policy. Stateless policies are the norm; the trait
/// takes `&mut self` so adaptive policies can keep history.
pub trait CoreAllocator: Send {
    fn decide(&mut self, vr: &VrLoadView) -> AllocDecision;
    fn name(&self) -> &'static str;
}

/// Fixed approach: "pre-assigns a fixed set of cores to a VR when the VR
/// first starts". Grows to the target, then never moves.
#[derive(Clone, Copy, Debug)]
pub struct FixedAllocator {
    pub cores: usize,
}

impl FixedAllocator {
    pub fn new(cores: usize) -> FixedAllocator {
        assert!(cores > 0, "a VR needs at least one core");
        FixedAllocator { cores }
    }
}

impl CoreAllocator for FixedAllocator {
    fn decide(&mut self, vr: &VrLoadView) -> AllocDecision {
        use std::cmp::Ordering::*;
        match vr.current_vris.cmp(&self.cores) {
            Less => AllocDecision::Grow,
            Greater => AllocDecision::Shrink,
            Equal => AllocDecision::Hold,
        }
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Dynamic approach with fixed thresholds: one configured per-core rate.
///
/// Experiment 2c: "we allocate c CPU cores to the VR if the aggregate
/// traffic rate is 60(c-1) and 60c Kfps" — i.e. grow when the arrival rate
/// reaches `current × per_core_rate`, shrink when it falls to or below
/// `(current - 1) × per_core_rate`.
#[derive(Clone, Copy, Debug)]
pub struct DynamicFixedThreshold {
    /// Assumed per-core service capacity, frames/second.
    pub per_core_rate: f64,
    /// Hysteresis margin in (0, 1]: shrink only when the arrival rate is
    /// below `(c-1) × rate × margin`, damping oscillation at the boundary.
    pub shrink_margin: f64,
}

impl DynamicFixedThreshold {
    pub fn new(per_core_rate: f64) -> DynamicFixedThreshold {
        assert!(per_core_rate > 0.0);
        DynamicFixedThreshold { per_core_rate, shrink_margin: 1.0 }
    }

    pub fn with_shrink_margin(mut self, margin: f64) -> DynamicFixedThreshold {
        assert!(margin > 0.0 && margin <= 1.0);
        self.shrink_margin = margin;
        self
    }

    fn threshold(&self, vris: usize) -> f64 {
        vris as f64 * self.per_core_rate
    }
}

impl CoreAllocator for DynamicFixedThreshold {
    fn decide(&mut self, vr: &VrLoadView) -> AllocDecision {
        let c = vr.current_vris;
        if c == 0 {
            return AllocDecision::Grow;
        }
        // Backed-up queues trump the smoothed rates: an EWMA lags a step
        // increase by several windows, but a queue past the high watermark is
        // proof the current allocation is not keeping up *now*.
        if vr.pressure == PressureLevel::Overloaded {
            return AllocDecision::Grow;
        }
        // Fig. 3.2 shrink guard first: "arrival <= threshold(service w/ 1
        // less VRIs)" — but never below one VRI.
        if c > 1 && vr.arrival_rate <= self.threshold(c - 1) * self.shrink_margin {
            return AllocDecision::Shrink;
        }
        // Grow guard: "threshold(service rate) <= arrival".
        if vr.arrival_rate >= self.threshold(c) {
            return AllocDecision::Grow;
        }
        AllocDecision::Hold
    }

    fn name(&self) -> &'static str {
        "dynamic-fixed"
    }
}

/// Dynamic approach with dynamic thresholds: thresholds come from the
/// measured departure rate instead of a constant, so "VRs with different
/// service rates" (Experiment 2e) are handled without manual tuning. Falls
/// back to a configured bootstrap rate until a measurement exists.
#[derive(Clone, Copy, Debug)]
pub struct DynamicServiceRate {
    /// Used until the service-rate estimator produces a value.
    pub bootstrap_rate: f64,
    /// Shrink hysteresis, as in [`DynamicFixedThreshold`].
    pub shrink_margin: f64,
}

impl DynamicServiceRate {
    pub fn new(bootstrap_rate: f64) -> DynamicServiceRate {
        assert!(bootstrap_rate > 0.0);
        DynamicServiceRate { bootstrap_rate, shrink_margin: 1.0 }
    }

    pub fn with_shrink_margin(mut self, margin: f64) -> DynamicServiceRate {
        assert!(margin > 0.0 && margin <= 1.0);
        self.shrink_margin = margin;
        self
    }
}

impl CoreAllocator for DynamicServiceRate {
    fn decide(&mut self, vr: &VrLoadView) -> AllocDecision {
        let c = vr.current_vris;
        if c == 0 {
            return AllocDecision::Grow;
        }
        // As in [`DynamicFixedThreshold`]: watermark overload is direct
        // evidence the rates understate demand.
        if vr.pressure == PressureLevel::Overloaded {
            return AllocDecision::Grow;
        }
        let per_vri = vr.service_rate_per_vri.unwrap_or(self.bootstrap_rate);
        if per_vri <= 0.0 {
            return AllocDecision::Hold;
        }
        // "If the traffic load of VR is lower than the service rate with one
        // less VRIs of VR, then VR monitor deallocates a CPU core."
        if c > 1 && vr.arrival_rate <= per_vri * (c - 1) as f64 * self.shrink_margin {
            return AllocDecision::Shrink;
        }
        // "If the current traffic load of the VR is above the current
        // service rate, then the VR monitor allocates an additional core."
        if vr.arrival_rate >= per_vri * c as f64 {
            return AllocDecision::Grow;
        }
        AllocDecision::Hold
    }

    fn name(&self) -> &'static str {
        "dynamic-service-rate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(arrival: f64, vris: usize) -> VrLoadView {
        VrLoadView {
            arrival_rate: arrival,
            service_rate_per_vri: None,
            current_vris: vris,
            pressure: PressureLevel::Normal,
        }
    }

    #[test]
    fn fixed_grows_to_target_then_holds() {
        let mut a = FixedAllocator::new(3);
        assert_eq!(a.decide(&view(0.0, 1)), AllocDecision::Grow);
        assert_eq!(a.decide(&view(1e9, 3)), AllocDecision::Hold);
        assert_eq!(a.decide(&view(0.0, 3)), AllocDecision::Hold);
        assert_eq!(a.decide(&view(0.0, 4)), AllocDecision::Shrink);
    }

    #[test]
    fn dynamic_fixed_matches_experiment_2c_bands() {
        // 60 Kfps per core: rate S in (60(c-1), 60c) Kfps should settle at
        // c cores — grow below c, hold at c, shrink above c.
        let mut a = DynamicFixedThreshold::new(60_000.0);
        // S = 150 Kfps wants 3 cores.
        assert_eq!(a.decide(&view(150_000.0, 2)), AllocDecision::Grow);
        assert_eq!(a.decide(&view(150_000.0, 3)), AllocDecision::Hold);
        assert_eq!(a.decide(&view(150_000.0, 4)), AllocDecision::Shrink);
    }

    #[test]
    fn dynamic_fixed_exact_threshold_grows() {
        let mut a = DynamicFixedThreshold::new(60_000.0);
        // Arrival exactly at capacity triggers growth ("threshold <= arrival").
        assert_eq!(a.decide(&view(60_000.0, 1)), AllocDecision::Grow);
    }

    #[test]
    fn dynamic_fixed_never_shrinks_below_one() {
        let mut a = DynamicFixedThreshold::new(60_000.0);
        assert_eq!(a.decide(&view(0.0, 1)), AllocDecision::Hold);
        assert_eq!(a.decide(&view(0.0, 0)), AllocDecision::Grow);
    }

    #[test]
    fn shrink_margin_damps_boundary_oscillation() {
        let mut tight = DynamicFixedThreshold::new(60_000.0);
        let mut damped = DynamicFixedThreshold::new(60_000.0).with_shrink_margin(0.9);
        // At exactly the (c-1) threshold, the un-damped policy shrinks...
        assert_eq!(tight.decide(&view(60_000.0, 2)), AllocDecision::Shrink);
        // ...while the damped one waits for a clearer signal.
        assert_eq!(damped.decide(&view(60_000.0, 2)), AllocDecision::Hold);
        assert_eq!(damped.decide(&view(50_000.0, 2)), AllocDecision::Shrink);
    }

    #[test]
    fn service_rate_uses_measurement_over_bootstrap() {
        let mut a = DynamicServiceRate::new(60_000.0);
        // Measured per-VRI capacity is only 30 Kfps (a heavy VR): 100 Kfps
        // of load on 3 VRIs (90 Kfps capacity) must grow, even though the
        // bootstrap 60 Kfps rate would have said hold.
        let vr = VrLoadView {
            arrival_rate: 100_000.0,
            service_rate_per_vri: Some(30_000.0),
            current_vris: 3,
            pressure: PressureLevel::Normal,
        };
        assert_eq!(a.decide(&vr), AllocDecision::Grow);
        let mut fixed = DynamicFixedThreshold::new(60_000.0);
        assert_eq!(fixed.decide(&view(100_000.0, 3)), AllocDecision::Shrink);
    }

    #[test]
    fn service_rate_shrinks_when_capacity_spare() {
        let mut a = DynamicServiceRate::new(60_000.0);
        let vr = VrLoadView {
            arrival_rate: 50_000.0,
            service_rate_per_vri: Some(60_000.0),
            current_vris: 2,
            pressure: PressureLevel::Normal,
        };
        assert_eq!(a.decide(&vr), AllocDecision::Shrink);
    }

    #[test]
    fn overload_pressure_overrides_rate_signals() {
        let overloaded = |arrival: f64, vris: usize| VrLoadView {
            pressure: PressureLevel::Overloaded,
            ..view(arrival, vris)
        };
        // Rates say hold (or even shrink), but a queue past the high
        // watermark forces growth for both dynamic policies...
        let mut fixed = DynamicFixedThreshold::new(60_000.0);
        assert_eq!(fixed.decide(&view(30_000.0, 2)), AllocDecision::Shrink);
        assert_eq!(fixed.decide(&overloaded(30_000.0, 2)), AllocDecision::Grow);
        let mut svc = DynamicServiceRate::new(60_000.0);
        assert_eq!(svc.decide(&view(50_000.0, 1)), AllocDecision::Hold);
        assert_eq!(svc.decide(&overloaded(50_000.0, 1)), AllocDecision::Grow);
        // ...while the fixed allocator keeps its contract.
        let mut pinned = FixedAllocator::new(2);
        assert_eq!(pinned.decide(&overloaded(1e9, 2)), AllocDecision::Hold);
        // The mere pressured band does not trigger growth.
        let mut fixed = DynamicFixedThreshold::new(60_000.0);
        let pressured = VrLoadView { pressure: PressureLevel::Pressured, ..view(30_000.0, 1) };
        assert_eq!(fixed.decide(&pressured), AllocDecision::Hold);
    }

    #[test]
    fn service_rate_bootstrap_path() {
        let mut a = DynamicServiceRate::new(60_000.0);
        assert_eq!(a.decide(&view(70_000.0, 1)), AllocDecision::Grow);
        assert_eq!(a.decide(&view(50_000.0, 1)), AllocDecision::Hold);
    }

    #[test]
    fn policy_names() {
        assert_eq!(FixedAllocator::new(1).name(), "fixed");
        assert_eq!(DynamicFixedThreshold::new(1.0).name(), "dynamic-fixed");
        assert_eq!(DynamicServiceRate::new(1.0).name(), "dynamic-service-rate");
    }
}
