//! Time sources.
//!
//! LVRM's control decisions (1-second reallocation period, EWMA windows,
//! flow-table timestamps) are all expressed against a nanosecond clock. The
//! abstraction lets the same monitor code run against wall time in the real
//! runtime and against simulated time in the discrete-event testbed.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock {
    fn now_ns(&self) -> u64;
}

/// Wall-clock time from a process-local epoch.
#[derive(Clone, Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    pub fn new() -> MonotonicClock {
        MonotonicClock { epoch: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A manually-advanced clock (simulation, tests). Cheap `Clone` — all clones
/// observe the same time cell.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    now: Rc<Cell<u64>>,
}

impl ManualClock {
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Jump to an absolute time. Panics if time would move backwards.
    pub fn set_ns(&self, ns: u64) {
        assert!(ns >= self.now.get(), "manual clock must not run backwards");
        self.now.set(ns);
    }

    /// Advance by a delta.
    pub fn advance_ns(&self, delta: u64) {
        self.now.set(self.now.get() + delta);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now_ns() > a);
    }

    #[test]
    fn manual_clock_is_shared_between_clones() {
        let c = ManualClock::new();
        let c2 = c.clone();
        c.set_ns(500);
        assert_eq!(c2.now_ns(), 500);
        c2.advance_ns(100);
        assert_eq!(c.now_ns(), 600);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let c = ManualClock::new();
        c.set_ns(100);
        c.set_ns(50);
    }
}
