//! Load balancing among the VRIs of a VR (paper §3.3, Fig. 3.3).
//!
//! Three base policies — join-the-shortest-queue, round-robin, random —
//! each usable *frame-based* (every frame balanced independently) or
//! *flow-based* (the first frame of a flow is balanced, later frames follow
//! it via the connection-tracking [`FlowTable`], avoiding intra-flow
//! reordering).

use lvrm_net::{FlowKey, Frame};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::flowtable::{FlowTable, FlowTableStats};
use crate::VriId;

/// Everything a balancer may consult for one decision. Slots are parallel
/// arrays: `vris[i]` has estimated load `loads[i]`; `valid[i]` is false for
/// slots that must not receive traffic (dead or saturated VRIs — the
/// pseudocode's "valid VRI" check).
pub struct BalanceCtx<'a> {
    pub vris: &'a [VriId],
    pub loads: &'a [f64],
    pub valid: &'a [bool],
    pub now_ns: u64,
}

impl BalanceCtx<'_> {
    fn slot_of(&self, vri: VriId) -> Option<usize> {
        self.vris.iter().position(|v| *v == vri).filter(|i| self.valid[*i])
    }
}

/// A load-balancing policy. `pick` returns the slot index to dispatch to.
pub trait LoadBalancer: Send {
    fn pick(&mut self, frame: &Frame, ctx: &BalanceCtx<'_>) -> Option<usize>;

    /// Forget any affinity to a VRI that was destroyed.
    fn purge_vri(&mut self, _vri: VriId) {}

    fn name(&self) -> &'static str;

    /// Flow-affinity counters `(sticky_hits, fresh_picks)` for policies that
    /// keep a flow table; stateless policies report zeros. Published as
    /// per-VR metrics by the monitor.
    fn flow_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Append this policy's flow-affinity entries as
    /// `(key, vri, last_seen_ns)` — the warm-restart export surface.
    /// Stateless policies export nothing.
    fn export_flows(&self, _out: &mut Vec<(FlowKey, VriId, u64)>) {}

    /// Re-learn one flow-affinity entry from a checkpoint. Stateless
    /// policies ignore it.
    fn import_flow(&mut self, _key: FlowKey, _vri: VriId, _last_seen_ns: u64) {}

    /// Advance incremental flow aging by at most `budget` slots of work
    /// (called from the monitor's 1 s tick — never a full-table scan).
    /// Returns evicted-entry count. Stateless policies do nothing.
    fn age_flows(&mut self, _now_ns: u64, _budget: usize) -> usize {
        0
    }

    /// Flow-table occupancy/churn stats, `None` for stateless policies.
    fn flow_table_stats(&self) -> Option<FlowTableStats> {
        None
    }
}

/// First valid slot helper shared by the policies.
fn first_valid(ctx: &BalanceCtx<'_>) -> Option<usize> {
    ctx.valid.iter().position(|v| *v)
}

/// Join-the-shortest-queue: the slot with the smallest estimated load
/// (Fig. 3.3 `JSQ`). Ties go to the lowest slot, matching the pseudocode's
/// strict `<` scan.
#[derive(Default)]
pub struct Jsq;

impl LoadBalancer for Jsq {
    fn pick(&mut self, _frame: &Frame, ctx: &BalanceCtx<'_>) -> Option<usize> {
        let mut best: Option<usize> = None;
        for i in 0..ctx.loads.len() {
            if !ctx.valid[i] {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) if ctx.loads[i] < ctx.loads[b] => best = Some(i),
                _ => {}
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "jsq"
    }
}

/// Round-robin over valid slots (Fig. 3.3 `RR`: "the next and valid VRI").
#[derive(Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl LoadBalancer for RoundRobin {
    fn pick(&mut self, _frame: &Frame, ctx: &BalanceCtx<'_>) -> Option<usize> {
        let n = ctx.valid.len();
        if n == 0 {
            return None;
        }
        for step in 1..=n {
            let i = (self.cursor + step) % n;
            if ctx.valid[i] {
                self.cursor = i;
                return Some(i);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "rr"
    }
}

/// Uniform random choice among valid slots (Fig. 3.3 `Rnd`). Deterministic
/// under a fixed seed, for reproducible experiments.
pub struct RandomBalancer {
    rng: SmallRng,
}

impl RandomBalancer {
    pub fn new(seed: u64) -> RandomBalancer {
        RandomBalancer { rng: SmallRng::seed_from_u64(seed) }
    }
}

impl LoadBalancer for RandomBalancer {
    fn pick(&mut self, _frame: &Frame, ctx: &BalanceCtx<'_>) -> Option<usize> {
        let n_valid = ctx.valid.iter().filter(|v| **v).count();
        if n_valid == 0 {
            return None;
        }
        let target = self.rng.gen_range(0..n_valid);
        ctx.valid.iter().enumerate().filter(|(_, v)| **v).nth(target).map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Flow-based wrapper (Fig. 3.3 `balance`): look the frame's 5-tuple up in
/// the hash table; on a hit with a still-valid VRI, stick with it; otherwise
/// delegate to the inner policy and remember the answer ("if flow-based,
/// VRI of added entry <- JSQ()/Rnd()/RR()").
pub struct FlowBased<B> {
    inner: B,
    table: FlowTable,
    /// Frames that followed an existing flow entry.
    pub sticky_hits: u64,
    /// Frames balanced fresh (first-of-flow, expired, or non-IP).
    pub fresh_picks: u64,
}

impl<B: LoadBalancer> FlowBased<B> {
    pub fn new(inner: B, flow_capacity: usize, flow_timeout_ns: u64) -> FlowBased<B> {
        FlowBased {
            inner,
            table: FlowTable::new(flow_capacity, flow_timeout_ns),
            sticky_hits: 0,
            fresh_picks: 0,
        }
    }

    pub fn table(&self) -> &FlowTable {
        &self.table
    }
}

impl<B: LoadBalancer> LoadBalancer for FlowBased<B> {
    fn pick(&mut self, frame: &Frame, ctx: &BalanceCtx<'_>) -> Option<usize> {
        if let Some(key) = FlowKey::from_frame(frame) {
            if let Some(vri) = self.table.find_and_touch(&key, ctx.now_ns) {
                // "if the entry is found and the VRI of the entry is valid"
                if let Some(slot) = ctx.slot_of(vri) {
                    self.sticky_hits += 1;
                    return Some(slot);
                }
            }
            let slot = self.inner.pick(frame, ctx)?;
            self.table.insert(key, ctx.vris[slot], ctx.now_ns);
            self.fresh_picks += 1;
            return Some(slot);
        }
        // Non-IP frames cannot be flow-classified; balance per frame.
        self.fresh_picks += 1;
        self.inner.pick(frame, ctx)
    }

    fn purge_vri(&mut self, vri: VriId) {
        self.table.purge_vri(vri);
        self.inner.purge_vri(vri);
    }

    fn name(&self) -> &'static str {
        match self.inner.name() {
            "jsq" => "flow-jsq",
            "rr" => "flow-rr",
            "random" => "flow-random",
            _ => "flow-based",
        }
    }

    fn flow_stats(&self) -> (u64, u64) {
        (self.sticky_hits, self.fresh_picks)
    }

    fn export_flows(&self, out: &mut Vec<(FlowKey, VriId, u64)>) {
        out.extend(self.table.entries());
    }

    fn import_flow(&mut self, key: FlowKey, vri: VriId, last_seen_ns: u64) {
        self.table.insert(key, vri, last_seen_ns);
    }

    fn age_flows(&mut self, now_ns: u64, budget: usize) -> usize {
        self.table.age_step(now_ns, budget)
    }

    fn flow_table_stats(&self) -> Option<FlowTableStats> {
        Some(self.table.stats())
    }
}

/// Fallback used when a VR currently has zero usable VRIs: `None` from any
/// policy. Kept as a helper so callers share the drop accounting.
pub fn no_valid_slot(ctx: &BalanceCtx<'_>) -> bool {
    first_valid(ctx).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn frame(src_port: u16) -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9))
            .udp(src_port, 80, &[0u8; 10])
    }

    fn vris(n: u32) -> Vec<VriId> {
        (0..n).map(VriId).collect()
    }

    #[test]
    fn jsq_picks_lightest_valid() {
        let mut b = Jsq;
        let v = vris(3);
        let ctx =
            BalanceCtx { vris: &v, loads: &[5.0, 1.0, 3.0], valid: &[true, true, true], now_ns: 0 };
        assert_eq!(b.pick(&frame(1), &ctx), Some(1));
        let ctx = BalanceCtx {
            vris: &v,
            loads: &[5.0, 1.0, 3.0],
            valid: &[true, false, true],
            now_ns: 0,
        };
        assert_eq!(b.pick(&frame(1), &ctx), Some(2));
    }

    #[test]
    fn jsq_tie_breaks_to_lowest_slot() {
        let mut b = Jsq;
        let v = vris(3);
        let ctx = BalanceCtx { vris: &v, loads: &[2.0, 2.0, 2.0], valid: &[true; 3], now_ns: 0 };
        assert_eq!(b.pick(&frame(1), &ctx), Some(0));
    }

    #[test]
    fn round_robin_cycles_and_skips_invalid() {
        let mut b = RoundRobin::default();
        let v = vris(3);
        let loads = [0.0; 3];
        let valid = [true, false, true];
        let mut picks = Vec::new();
        for _ in 0..4 {
            let ctx = BalanceCtx { vris: &v, loads: &loads, valid: &valid, now_ns: 0 };
            picks.push(b.pick(&frame(1), &ctx).unwrap());
        }
        assert_eq!(picks, vec![2, 0, 2, 0]);
    }

    #[test]
    fn random_is_deterministic_and_uniform_ish() {
        let mut b = RandomBalancer::new(42);
        let v = vris(4);
        let loads = [0.0; 4];
        let valid = [true; 4];
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            let ctx = BalanceCtx { vris: &v, loads: &loads, valid: &valid, now_ns: 0 };
            counts[b.pick(&frame(1), &ctx).unwrap()] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts {counts:?} not uniform");
        }
        // Deterministic replay.
        let mut b2 = RandomBalancer::new(42);
        let ctx = BalanceCtx { vris: &v, loads: &loads, valid: &valid, now_ns: 0 };
        let mut b3 = RandomBalancer::new(42);
        let ctx2 = BalanceCtx { vris: &v, loads: &loads, valid: &valid, now_ns: 0 };
        assert_eq!(b2.pick(&frame(1), &ctx), b3.pick(&frame(1), &ctx2));
    }

    #[test]
    fn all_invalid_yields_none() {
        let v = vris(2);
        let loads = [0.0; 2];
        let valid = [false, false];
        let ctx = BalanceCtx { vris: &v, loads: &loads, valid: &valid, now_ns: 0 };
        assert!(Jsq.pick(&frame(1), &ctx).is_none());
        assert!(RoundRobin::default().pick(&frame(1), &ctx).is_none());
        assert!(RandomBalancer::new(1).pick(&frame(1), &ctx).is_none());
        assert!(no_valid_slot(&ctx));
    }

    #[test]
    fn flow_based_sticks_to_first_assignment() {
        let mut b = FlowBased::new(RoundRobin::default(), 64, u64::MAX);
        let v = vris(3);
        let loads = [0.0; 3];
        let valid = [true; 3];
        let f = frame(7777);
        let ctx = BalanceCtx { vris: &v, loads: &loads, valid: &valid, now_ns: 0 };
        let first = b.pick(&f, &ctx).unwrap();
        for t in 1..20 {
            let ctx = BalanceCtx { vris: &v, loads: &loads, valid: &valid, now_ns: t };
            assert_eq!(b.pick(&f, &ctx), Some(first), "flow must stay put");
        }
        assert_eq!(b.sticky_hits, 19);
        assert_eq!(b.fresh_picks, 1);
    }

    #[test]
    fn flow_based_rebalances_after_vri_death() {
        let mut b = FlowBased::new(Jsq, 64, u64::MAX);
        let v = vris(2);
        let f = frame(1234);
        let ctx = BalanceCtx { vris: &v, loads: &[0.0, 1.0], valid: &[true, true], now_ns: 0 };
        assert_eq!(b.pick(&f, &ctx), Some(0)); // JSQ picks slot 0 (VriId 0)
                                               // VRI 0 dies: slot 0 invalid. The sticky entry must not be used.
        let ctx = BalanceCtx { vris: &v, loads: &[0.0, 1.0], valid: &[false, true], now_ns: 1 };
        assert_eq!(b.pick(&f, &ctx), Some(1));
    }

    #[test]
    fn flow_based_distinct_flows_spread() {
        let mut b = FlowBased::new(RoundRobin::default(), 256, u64::MAX);
        let v = vris(2);
        let loads = [0.0; 2];
        let valid = [true; 2];
        let mut per_slot = [0u32; 2];
        for p in 0..100 {
            let ctx = BalanceCtx { vris: &v, loads: &loads, valid: &valid, now_ns: 0 };
            per_slot[b.pick(&frame(p), &ctx).unwrap()] += 1;
        }
        assert_eq!(per_slot, [50, 50]);
    }

    #[test]
    fn export_import_roundtrips_affinity() {
        let mut b = FlowBased::new(RoundRobin::default(), 64, u64::MAX);
        let v = vris(3);
        let loads = [0.0; 3];
        let valid = [true; 3];
        let f = frame(4242);
        let ctx = BalanceCtx { vris: &v, loads: &loads, valid: &valid, now_ns: 5 };
        let first = b.pick(&f, &ctx).unwrap();
        let mut flows = Vec::new();
        b.export_flows(&mut flows);
        assert_eq!(flows.len(), 1);
        // A fresh balancer fed the export sticks to the same VRI.
        let mut b2 = FlowBased::new(RoundRobin::default(), 64, u64::MAX);
        for (k, vri, ts) in flows {
            b2.import_flow(k, vri, ts);
        }
        let ctx = BalanceCtx { vris: &v, loads: &loads, valid: &valid, now_ns: 6 };
        assert_eq!(b2.pick(&f, &ctx), Some(first));
        assert_eq!(b2.sticky_hits, 1, "imported entry hit, not re-balanced");
        // Stateless policies are no-ops.
        let mut none = Vec::new();
        Jsq.export_flows(&mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn names_reflect_mode() {
        assert_eq!(Jsq.name(), "jsq");
        assert_eq!(FlowBased::new(Jsq, 16, 1).name(), "flow-jsq");
    }
}
