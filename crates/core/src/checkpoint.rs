//! Versioned, checksummed control-plane checkpoints for warm restart
//! (DESIGN.md §10).
//!
//! A monitor restart used to lose exactly the state that State-Compute
//! Replication shows must survive for correct stateful packet processing:
//! flow affinity, allocator/quarantine/backoff state, pressure levels, and
//! the cumulative counters behind the conservation identities. A
//! [`Checkpoint`] captures all of it in one self-contained blob written
//! atomically from the monitor's lazy tick.
//!
//! ## Wire format
//!
//! Everything little-endian, hand-rolled (no serde in the offline build):
//!
//! ```text
//! "LVCK" | version u32 | epoch u32 | ts_ns u64 | payload | crc32 u32
//! ```
//!
//! The trailing CRC-32 (IEEE polynomial) covers every byte before it,
//! including magic and header, so truncation and bit-rot are both caught
//! before any field is trusted. [`Checkpoint::decode`] never panics: any
//! malformed input yields a [`CheckpointError`], and the monitor's
//! `restore_from` logs a `checkpoint_rejected` event and cold-starts.
//!
//! Flow-affinity entries are recorded against the VRI's **slot index**
//! within its VR (position in the live-VRI vector), not its `VriId`:
//! VriIds are not stable across a restart (the restored monitor respawns
//! fresh instances), but slot `i` of VR "deptA" before the restart maps to
//! slot `i` after, so affinity survives.

use std::fmt;
use std::io;
use std::path::Path;

use lvrm_net::flow::Protocol;
use lvrm_net::FlowKey;

use crate::monitor::LvrmStats;

pub const CHECKPOINT_MAGIC: [u8; 4] = *b"LVCK";
pub const CHECKPOINT_VERSION: u32 = 2;

/// Number of [`LvrmStats`] counters on the wire (`stats_fields` order).
/// Version 2 appended the three `lvrm_repl_*` replication counters, so the
/// fifth conservation identity survives warm restart and the HA delta
/// stream exactly like the first four.
pub const STATS_FIELDS: usize = 22;

/// Why a checkpoint blob was rejected (or could not be produced).
#[derive(Debug)]
pub enum CheckpointError {
    /// Shorter than the fixed header + trailer.
    TooShort,
    /// Leading magic is not `LVCK`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Trailing CRC-32 does not match the content.
    BadChecksum { expected: u32, found: u32 },
    /// Structurally invalid payload (bad length prefix, trailing garbage…).
    Malformed(&'static str),
    /// Filesystem error while reading or writing.
    Io(io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::TooShort => write!(f, "checkpoint too short"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "checkpoint crc mismatch (expected {expected:#010x}, found {found:#010x})"
                )
            }
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

// CRC-32 (IEEE 802.3 polynomial, reflected), table built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32/IEEE over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One flow-affinity entry: `key` was pinned to slot `slot` of its VR.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowRecord {
    pub key: FlowKey,
    pub slot: u32,
    pub last_seen_ns: u64,
}

/// Per-VR control-plane state (matched back by `name` on restore).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct VrCheckpoint {
    pub name: String,
    pub frames_in: u64,
    pub frames_out: u64,
    pub admitted: u64,
    pub shed: u64,
    pub weight: f64,
    pub shed_credit: f64,
    pub crash_streak: u32,
    pub last_crash_ns: u64,
    pub backoff_until_ns: u64,
    pub respawn_deficit: u32,
    pub quarantined: bool,
    /// Pressure level gauge encoding (0 normal, 1 pressured, 2 overloaded).
    pub pressure: u8,
    /// Live VRIs at checkpoint time — the restore target instance count.
    pub vri_slots: u32,
    pub flows: Vec<FlowRecord>,
}

/// The whole control-plane snapshot.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Checkpoint {
    pub epoch: u32,
    pub ts_ns: u64,
    pub stats: LvrmStats,
    pub next_vri: u32,
    pub vrs: Vec<VrCheckpoint>,
}

// ---- encoding ----------------------------------------------------------

pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    pub(crate) fn flow_key(&mut self, k: &FlowKey) {
        self.buf.extend_from_slice(&k.src.octets());
        self.buf.extend_from_slice(&k.dst.octets());
        self.u16(k.src_port);
        self.u16(k.dst_port);
        self.u8(k.proto.to_ip_proto());
    }
}

pub(crate) struct Dec<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(CheckpointError::Malformed("field past end of payload"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    pub(crate) fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub(crate) fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed("bool out of range")),
        }
    }
    pub(crate) fn str(&mut self) -> Result<String, CheckpointError> {
        let len = self.u32()? as usize;
        if len > 1 << 16 {
            return Err(CheckpointError::Malformed("string too long"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed("string not utf-8"))
    }
    pub(crate) fn flow_key(&mut self) -> Result<FlowKey, CheckpointError> {
        let src: [u8; 4] = self.take(4)?.try_into().expect("4 bytes");
        let dst: [u8; 4] = self.take(4)?.try_into().expect("4 bytes");
        let src_port = self.u16()?;
        let dst_port = self.u16()?;
        let proto = Protocol::from_ip_proto(self.u8()?);
        Ok(FlowKey { src: src.into(), dst: dst.into(), src_port, dst_port, proto })
    }
}

/// `LvrmStats` fields in wire order. One place to keep encode/decode and
/// the field count in sync.
fn stats_fields(s: &LvrmStats) -> [u64; STATS_FIELDS] {
    [
        s.frames_in,
        s.frames_out,
        s.unclassified,
        s.dispatch_drops,
        s.no_vri_drops,
        s.shrink_lost,
        s.control_relayed,
        s.control_drops,
        s.redispatched,
        s.crash_lost,
        s.quarantined_drops,
        s.vri_deaths,
        s.respawns,
        s.retired_dispatch_drops,
        s.shed_early,
        s.reclaimed,
        s.queue_lost,
        s.retired_dispatched,
        s.retired_returned,
        s.updates_emitted,
        s.updates_folded,
        s.updates_lost,
    ]
}

fn stats_from_fields(f: [u64; STATS_FIELDS]) -> LvrmStats {
    LvrmStats {
        frames_in: f[0],
        frames_out: f[1],
        unclassified: f[2],
        dispatch_drops: f[3],
        no_vri_drops: f[4],
        shrink_lost: f[5],
        control_relayed: f[6],
        control_drops: f[7],
        redispatched: f[8],
        crash_lost: f[9],
        quarantined_drops: f[10],
        vri_deaths: f[11],
        respawns: f[12],
        retired_dispatch_drops: f[13],
        shed_early: f[14],
        reclaimed: f[15],
        queue_lost: f[16],
        retired_dispatched: f[17],
        retired_returned: f[18],
        updates_emitted: f[19],
        updates_folded: f[20],
        updates_lost: f[21],
    }
}

impl Checkpoint {
    /// Serialize to the versioned, CRC-trailed wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc { buf: Vec::with_capacity(256) };
        e.buf.extend_from_slice(&CHECKPOINT_MAGIC);
        e.u32(CHECKPOINT_VERSION);
        e.u32(self.epoch);
        e.u64(self.ts_ns);
        for v in stats_fields(&self.stats) {
            e.u64(v);
        }
        e.u32(self.next_vri);
        e.u32(self.vrs.len() as u32);
        for vr in &self.vrs {
            e.str(&vr.name);
            e.u64(vr.frames_in);
            e.u64(vr.frames_out);
            e.u64(vr.admitted);
            e.u64(vr.shed);
            e.f64(vr.weight);
            e.f64(vr.shed_credit);
            e.u32(vr.crash_streak);
            e.u64(vr.last_crash_ns);
            e.u64(vr.backoff_until_ns);
            e.u32(vr.respawn_deficit);
            e.u8(vr.quarantined as u8);
            e.u8(vr.pressure);
            e.u32(vr.vri_slots);
            e.u32(vr.flows.len() as u32);
            for f in &vr.flows {
                e.flow_key(&f.key);
                e.u32(f.slot);
                e.u64(f.last_seen_ns);
            }
        }
        let crc = crc32(&e.buf);
        e.u32(crc);
        e.buf
    }

    /// Parse and verify a blob. Never panics; every malformation maps to a
    /// [`CheckpointError`].
    pub fn decode(buf: &[u8]) -> Result<Checkpoint, CheckpointError> {
        // magic + version + epoch + ts + stats + next_vri + vr count + crc
        if buf.len() < 4 + 4 + 4 + 8 + STATS_FIELDS * 8 + 4 + 4 + 4 {
            return Err(CheckpointError::TooShort);
        }
        if buf[..4] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let body = &buf[..buf.len() - 4];
        let found = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
        let expected = crc32(body);
        if found != expected {
            return Err(CheckpointError::BadChecksum { expected, found });
        }
        let mut d = Dec { buf: body, pos: 4 };
        let version = d.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let epoch = d.u32()?;
        let ts_ns = d.u64()?;
        let mut fields = [0u64; STATS_FIELDS];
        for f in fields.iter_mut() {
            *f = d.u64()?;
        }
        let stats = stats_from_fields(fields);
        let next_vri = d.u32()?;
        let n_vrs = d.u32()? as usize;
        if n_vrs > 1 << 16 {
            return Err(CheckpointError::Malformed("implausible vr count"));
        }
        let mut vrs = Vec::with_capacity(n_vrs.min(1024));
        for _ in 0..n_vrs {
            let name = d.str()?;
            let frames_in = d.u64()?;
            let frames_out = d.u64()?;
            let admitted = d.u64()?;
            let shed = d.u64()?;
            let weight = d.f64()?;
            let shed_credit = d.f64()?;
            let crash_streak = d.u32()?;
            let last_crash_ns = d.u64()?;
            let backoff_until_ns = d.u64()?;
            let respawn_deficit = d.u32()?;
            let quarantined = d.bool()?;
            let pressure = d.u8()?;
            if pressure > 2 {
                return Err(CheckpointError::Malformed("pressure level out of range"));
            }
            let vri_slots = d.u32()?;
            let n_flows = d.u32()? as usize;
            if n_flows > 1 << 24 {
                return Err(CheckpointError::Malformed("implausible flow count"));
            }
            let mut flows = Vec::with_capacity(n_flows.min(65536));
            for _ in 0..n_flows {
                let key = d.flow_key()?;
                let slot = d.u32()?;
                let last_seen_ns = d.u64()?;
                flows.push(FlowRecord { key, slot, last_seen_ns });
            }
            vrs.push(VrCheckpoint {
                name,
                frames_in,
                frames_out,
                admitted,
                shed,
                weight,
                shed_credit,
                crash_streak,
                last_crash_ns,
                backoff_until_ns,
                respawn_deficit,
                quarantined,
                pressure,
                vri_slots,
                flows,
            });
        }
        if d.pos != body.len() {
            return Err(CheckpointError::Malformed("trailing bytes after payload"));
        }
        Ok(Checkpoint { epoch, ts_ns, stats, next_vri, vrs })
    }

    /// Write to `path` via a sibling `.tmp` file and an atomic rename, so a
    /// crash mid-write never leaves a torn checkpoint where a reader (or
    /// the next restore) expects a whole one.
    ///
    /// Durability, not just atomicity: the tmp file is `sync_all`ed before
    /// the rename (so the rename never publishes a name for data still in
    /// the page cache), and the parent directory is fsynced after (so the
    /// rename itself survives power loss). Without both, a checkpoint that
    /// "succeeded" could vanish or read back torn after a crash.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        use std::io::Write;
        let bytes = self.encode();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Directory fsync is advisory on some filesystems; failure to
            // open the dir is an error, failure to sync is not fatal on
            // platforms that refuse fsync on directories.
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Read and verify the checkpoint at `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Checkpoint::decode(&bytes)
    }

    /// Canonical form for comparisons that must not depend on flow-table
    /// iteration order: each VR's flows sorted by key. VR order is kept —
    /// it is semantic (the monitor's VR vector order).
    pub fn canonical(&self) -> Checkpoint {
        let mut ck = self.clone();
        for vr in &mut ck.vrs {
            vr.flows.sort_by_key(|f| flow_key_bytes(&f.key));
        }
        ck
    }

    /// Fold a streamed delta into this (shadow) checkpoint, producing the
    /// successor snapshot. Flows end up canonically sorted, so
    /// `base.fold(diff(base, next)) == next.canonical()`.
    pub fn fold(&mut self, d: &CheckpointDelta) {
        self.epoch = d.epoch;
        self.ts_ns = d.ts_ns;
        let old = stats_fields(&self.stats);
        let mut folded = [0u64; STATS_FIELDS];
        for (i, f) in folded.iter_mut().enumerate() {
            *f = old[i].wrapping_add(d.stats_delta[i]);
        }
        self.stats = stats_from_fields(folded);
        self.next_vri = d.next_vri;
        // Rebuild the VR vector in the delta's (master's) order; flows of
        // surviving VRs carry over by name, then evictions and upserts apply.
        let mut old_vrs = std::mem::take(&mut self.vrs);
        for dv in &d.vrs {
            let mut flows = old_vrs
                .iter_mut()
                .find(|v| v.name == dv.meta.name)
                .map(|v| std::mem::take(&mut v.flows))
                .unwrap_or_default();
            if !dv.evictions.is_empty() {
                let evict: std::collections::HashSet<[u8; 13]> =
                    dv.evictions.iter().map(flow_key_bytes).collect();
                flows.retain(|f| !evict.contains(&flow_key_bytes(&f.key)));
            }
            if !dv.upserts.is_empty() {
                let upsert: std::collections::HashSet<[u8; 13]> =
                    dv.upserts.iter().map(|f| flow_key_bytes(&f.key)).collect();
                flows.retain(|f| !upsert.contains(&flow_key_bytes(&f.key)));
                flows.extend_from_slice(&dv.upserts);
            }
            flows.sort_by_key(|f| flow_key_bytes(&f.key));
            let mut vr = dv.meta.clone();
            vr.flows = flows;
            self.vrs.push(vr);
        }
    }
}

/// A flow key as its 13 wire bytes — a total order for canonical sorting
/// and set membership, shared by `fold` and `CheckpointDelta::diff`.
fn flow_key_bytes(k: &FlowKey) -> [u8; 13] {
    let mut b = [0u8; 13];
    b[..4].copy_from_slice(&k.src.octets());
    b[4..8].copy_from_slice(&k.dst.octets());
    b[8..10].copy_from_slice(&k.src_port.to_be_bytes());
    b[10..12].copy_from_slice(&k.dst_port.to_be_bytes());
    b[12] = k.proto.to_ip_proto();
    b
}

// ---- checkpoint deltas (HA replication stream, DESIGN.md §13) ----------

pub const DELTA_MAGIC: [u8; 4] = *b"LVCD";
pub const DELTA_VERSION: u32 = 2;

/// Per-VR slice of a [`CheckpointDelta`]: the VR's full (small) scalar
/// state plus the flow-table *changes* since the previous snapshot. The
/// scalar meta rides along whole because it is ~80 bytes per VR while the
/// flow table is the part that scales to millions of entries — deltas stay
/// compact where it matters.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct VrDelta {
    /// Scalar per-VR state (flows field unused — always empty on the wire).
    pub meta: VrCheckpoint,
    /// Flow keys dropped since the base snapshot (aged out or re-pinned).
    pub evictions: Vec<FlowKey>,
    /// Flow records added or re-stamped since the base snapshot.
    pub upserts: Vec<FlowRecord>,
}

/// One step of the master→standby replication stream: everything needed to
/// advance a shadow [`Checkpoint`] from snapshot *n* to snapshot *n+1*.
///
/// Wire format mirrors `LVCK`:
///
/// ```text
/// "LVCD" | version u32 | epoch u32 | seq u64 | ts_ns u64
///        | stats_delta[19] u64 | next_vri u32 | vr sections | crc32 u32
/// ```
///
/// Stat counters travel as **wrapping increments** so the fold is exact
/// even across counter wraps; epoch and `next_vri` travel absolute.
/// `seq` is the stream position — the standby folds only contiguous
/// sequences and asks for a full snapshot on any gap.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CheckpointDelta {
    pub epoch: u32,
    pub seq: u64,
    pub ts_ns: u64,
    pub stats_delta: [u64; STATS_FIELDS],
    pub next_vri: u32,
    pub vrs: Vec<VrDelta>,
}

impl CheckpointDelta {
    /// Compute the delta that advances `prev` to `next`:
    /// `prev.fold(&diff(prev, next)) == next.canonical()`.
    pub fn diff(prev: &Checkpoint, next: &Checkpoint, seq: u64) -> CheckpointDelta {
        let p = stats_fields(&prev.stats);
        let n = stats_fields(&next.stats);
        let mut stats_delta = [0u64; STATS_FIELDS];
        for (i, d) in stats_delta.iter_mut().enumerate() {
            *d = n[i].wrapping_sub(p[i]);
        }
        let mut vrs = Vec::with_capacity(next.vrs.len());
        for nv in &next.vrs {
            let mut meta = nv.clone();
            meta.flows = Vec::new();
            let old_flows: std::collections::HashMap<[u8; 13], &FlowRecord> = prev
                .vrs
                .iter()
                .find(|v| v.name == nv.name)
                .map(|v| v.flows.iter().map(|f| (flow_key_bytes(&f.key), f)).collect())
                .unwrap_or_default();
            let new_keys: std::collections::HashSet<[u8; 13]> =
                nv.flows.iter().map(|f| flow_key_bytes(&f.key)).collect();
            // Sorted so the encoded delta is byte-reproducible (HashMap
            // iteration order is seeded per process).
            let mut evictions: Vec<FlowKey> = old_flows
                .iter()
                .filter(|(k, _)| !new_keys.contains(*k))
                .map(|(_, f)| f.key)
                .collect();
            evictions.sort_by_key(flow_key_bytes);
            let upserts = nv
                .flows
                .iter()
                .filter(|f| old_flows.get(&flow_key_bytes(&f.key)).is_none_or(|old| *old != *f))
                .copied()
                .collect();
            vrs.push(VrDelta { meta, evictions, upserts });
        }
        CheckpointDelta {
            epoch: next.epoch,
            seq,
            ts_ns: next.ts_ns,
            stats_delta,
            next_vri: next.next_vri,
            vrs,
        }
    }

    /// Serialize to the versioned, CRC-trailed wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc { buf: Vec::with_capacity(256) };
        e.buf.extend_from_slice(&DELTA_MAGIC);
        e.u32(DELTA_VERSION);
        e.u32(self.epoch);
        e.u64(self.seq);
        e.u64(self.ts_ns);
        for v in self.stats_delta {
            e.u64(v);
        }
        e.u32(self.next_vri);
        e.u32(self.vrs.len() as u32);
        for dv in &self.vrs {
            let m = &dv.meta;
            e.str(&m.name);
            e.u64(m.frames_in);
            e.u64(m.frames_out);
            e.u64(m.admitted);
            e.u64(m.shed);
            e.f64(m.weight);
            e.f64(m.shed_credit);
            e.u32(m.crash_streak);
            e.u64(m.last_crash_ns);
            e.u64(m.backoff_until_ns);
            e.u32(m.respawn_deficit);
            e.u8(m.quarantined as u8);
            e.u8(m.pressure);
            e.u32(m.vri_slots);
            e.u32(dv.evictions.len() as u32);
            for k in &dv.evictions {
                e.flow_key(k);
            }
            e.u32(dv.upserts.len() as u32);
            for f in &dv.upserts {
                e.flow_key(&f.key);
                e.u32(f.slot);
                e.u64(f.last_seen_ns);
            }
        }
        let crc = crc32(&e.buf);
        e.u32(crc);
        e.buf
    }

    /// Parse and verify a blob. Never panics; every malformation maps to a
    /// [`CheckpointError`].
    pub fn decode(buf: &[u8]) -> Result<CheckpointDelta, CheckpointError> {
        // magic + version + epoch + seq + ts + stats + next_vri + vr count + crc
        if buf.len() < 4 + 4 + 4 + 8 + 8 + STATS_FIELDS * 8 + 4 + 4 + 4 {
            return Err(CheckpointError::TooShort);
        }
        if buf[..4] != DELTA_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let body = &buf[..buf.len() - 4];
        let found = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
        let expected = crc32(body);
        if found != expected {
            return Err(CheckpointError::BadChecksum { expected, found });
        }
        let mut d = Dec { buf: body, pos: 4 };
        let version = d.u32()?;
        if version != DELTA_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let epoch = d.u32()?;
        let seq = d.u64()?;
        let ts_ns = d.u64()?;
        let mut stats_delta = [0u64; STATS_FIELDS];
        for f in stats_delta.iter_mut() {
            *f = d.u64()?;
        }
        let next_vri = d.u32()?;
        let n_vrs = d.u32()? as usize;
        if n_vrs > 1 << 16 {
            return Err(CheckpointError::Malformed("implausible vr count"));
        }
        let mut vrs = Vec::with_capacity(n_vrs.min(1024));
        for _ in 0..n_vrs {
            let name = d.str()?;
            let frames_in = d.u64()?;
            let frames_out = d.u64()?;
            let admitted = d.u64()?;
            let shed = d.u64()?;
            let weight = d.f64()?;
            let shed_credit = d.f64()?;
            let crash_streak = d.u32()?;
            let last_crash_ns = d.u64()?;
            let backoff_until_ns = d.u64()?;
            let respawn_deficit = d.u32()?;
            let quarantined = d.bool()?;
            let pressure = d.u8()?;
            if pressure > 2 {
                return Err(CheckpointError::Malformed("pressure level out of range"));
            }
            let vri_slots = d.u32()?;
            let n_evict = d.u32()? as usize;
            if n_evict > 1 << 24 {
                return Err(CheckpointError::Malformed("implausible eviction count"));
            }
            let mut evictions = Vec::with_capacity(n_evict.min(65536));
            for _ in 0..n_evict {
                evictions.push(d.flow_key()?);
            }
            let n_upsert = d.u32()? as usize;
            if n_upsert > 1 << 24 {
                return Err(CheckpointError::Malformed("implausible upsert count"));
            }
            let mut upserts = Vec::with_capacity(n_upsert.min(65536));
            for _ in 0..n_upsert {
                let key = d.flow_key()?;
                let slot = d.u32()?;
                let last_seen_ns = d.u64()?;
                upserts.push(FlowRecord { key, slot, last_seen_ns });
            }
            let meta = VrCheckpoint {
                name,
                frames_in,
                frames_out,
                admitted,
                shed,
                weight,
                shed_credit,
                crash_streak,
                last_crash_ns,
                backoff_until_ns,
                respawn_deficit,
                quarantined,
                pressure,
                vri_slots,
                flows: Vec::new(),
            };
            vrs.push(VrDelta { meta, evictions, upserts });
        }
        if d.pos != body.len() {
            return Err(CheckpointError::Malformed("trailing bytes after payload"));
        }
        Ok(CheckpointDelta { epoch, seq, ts_ns, stats_delta, next_vri, vrs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample() -> Checkpoint {
        Checkpoint {
            epoch: 3,
            ts_ns: 123_456_789,
            stats: LvrmStats {
                frames_in: 600,
                frames_out: 590,
                dispatch_drops: 10,
                ..Default::default()
            },
            next_vri: 9,
            vrs: vec![
                VrCheckpoint {
                    name: "deptA".into(),
                    frames_in: 400,
                    frames_out: 395,
                    admitted: 398,
                    shed: 2,
                    weight: 2.5,
                    shed_credit: 0.75,
                    crash_streak: 1,
                    last_crash_ns: 77,
                    backoff_until_ns: 99,
                    respawn_deficit: 1,
                    quarantined: false,
                    pressure: 2,
                    vri_slots: 3,
                    flows: vec![FlowRecord {
                        key: FlowKey {
                            src: Ipv4Addr::new(10, 0, 1, 5),
                            dst: Ipv4Addr::new(10, 0, 2, 9),
                            src_port: 4242,
                            dst_port: 80,
                            proto: Protocol::Udp,
                        },
                        slot: 1,
                        last_seen_ns: 1234,
                    }],
                },
                VrCheckpoint { name: "deptB".into(), quarantined: true, ..Default::default() },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ck = sample();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).expect("decodes");
        assert_eq!(back, ck);
    }

    #[test]
    fn crc_is_stable_and_detects_flips() {
        // Known-answer: CRC-32/IEEE of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let r = Checkpoint::decode(&bad);
            assert!(r.is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..len]).is_err(), "truncation to {len} accepted");
        }
    }

    #[test]
    fn wrong_version_and_magic_are_distinct_errors() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(Checkpoint::decode(&bytes), Err(CheckpointError::BadMagic)));
        let mut bytes = sample().encode();
        bytes[4] = 99; // version — also breaks the CRC unless re-trailed
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert!(matches!(Checkpoint::decode(&bytes), Err(CheckpointError::BadVersion(99))));
    }

    /// Simulated crash between tmp write and rename: a stale `.tmp` from a
    /// torn earlier attempt must not survive a later successful write, and
    /// the published file must be whole.
    #[test]
    fn crash_between_write_and_rename_leaves_no_tmp_and_whole_file() {
        let dir = std::env::temp_dir().join("lvrm-ck-crash-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("crash-{}.ck", std::process::id()));
        let tmp = {
            let mut t = path.as_os_str().to_owned();
            t.push(".tmp");
            std::path::PathBuf::from(t)
        };
        // "Crash" leftovers: a torn tmp file (half a checkpoint) at the
        // sibling path, as if the previous writer died before its rename.
        let ck = sample();
        let bytes = ck.encode();
        std::fs::write(&tmp, &bytes[..bytes.len() / 2]).unwrap();
        // The next checkpoint write must replace the torn tmp, fsync it,
        // and publish atomically.
        ck.write_atomic(&path).unwrap();
        assert!(!tmp.exists(), "tmp file must be renamed away, not leaked");
        assert_eq!(Checkpoint::load(&path).unwrap(), ck, "published file is whole");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_diff_fold_roundtrip() {
        let a = sample();
        let mut b = sample();
        b.epoch = 4;
        b.ts_ns = 999_999_999;
        b.stats.frames_in += 50;
        b.stats.frames_out += 48;
        b.next_vri = 11;
        b.vrs[0].frames_in += 50;
        b.vrs[0].flows.clear(); // evict the one flow
        b.vrs[0].flows.push(FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::new(10, 0, 1, 6),
                dst: Ipv4Addr::new(10, 0, 2, 9),
                src_port: 5555,
                dst_port: 443,
                proto: Protocol::Tcp,
            },
            slot: 2,
            last_seen_ns: 5678,
        });
        b.vrs.remove(1); // deptB retired
        let d = CheckpointDelta::diff(&a, &b, 7);
        assert_eq!(d.seq, 7);
        let mut shadow = a.clone();
        shadow.fold(&d);
        assert_eq!(shadow, b.canonical());
        // Wire roundtrip of the same delta.
        let back = CheckpointDelta::decode(&d.encode()).expect("decodes");
        assert_eq!(back, d);
    }

    #[test]
    fn delta_rejects_checkpoint_magic_and_corruption() {
        let d = CheckpointDelta::diff(&sample(), &sample(), 1);
        let bytes = d.encode();
        assert!(matches!(Checkpoint::decode(&bytes), Err(CheckpointError::BadMagic)));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(CheckpointDelta::decode(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join("lvrm-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.ck");
        let ck = sample();
        ck.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        assert!(!path.with_extension("ck.tmp").exists(), "tmp file renamed away");
        std::fs::remove_file(&path).ok();
    }
}
