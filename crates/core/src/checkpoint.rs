//! Versioned, checksummed control-plane checkpoints for warm restart
//! (DESIGN.md §10).
//!
//! A monitor restart used to lose exactly the state that State-Compute
//! Replication shows must survive for correct stateful packet processing:
//! flow affinity, allocator/quarantine/backoff state, pressure levels, and
//! the cumulative counters behind the conservation identities. A
//! [`Checkpoint`] captures all of it in one self-contained blob written
//! atomically from the monitor's lazy tick.
//!
//! ## Wire format
//!
//! Everything little-endian, hand-rolled (no serde in the offline build):
//!
//! ```text
//! "LVCK" | version u32 | epoch u32 | ts_ns u64 | payload | crc32 u32
//! ```
//!
//! The trailing CRC-32 (IEEE polynomial) covers every byte before it,
//! including magic and header, so truncation and bit-rot are both caught
//! before any field is trusted. [`Checkpoint::decode`] never panics: any
//! malformed input yields a [`CheckpointError`], and the monitor's
//! `restore_from` logs a `checkpoint_rejected` event and cold-starts.
//!
//! Flow-affinity entries are recorded against the VRI's **slot index**
//! within its VR (position in the live-VRI vector), not its `VriId`:
//! VriIds are not stable across a restart (the restored monitor respawns
//! fresh instances), but slot `i` of VR "deptA" before the restart maps to
//! slot `i` after, so affinity survives.

use std::fmt;
use std::io;
use std::path::Path;

use lvrm_net::flow::Protocol;
use lvrm_net::FlowKey;

use crate::monitor::LvrmStats;

pub const CHECKPOINT_MAGIC: [u8; 4] = *b"LVCK";
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint blob was rejected (or could not be produced).
#[derive(Debug)]
pub enum CheckpointError {
    /// Shorter than the fixed header + trailer.
    TooShort,
    /// Leading magic is not `LVCK`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Trailing CRC-32 does not match the content.
    BadChecksum { expected: u32, found: u32 },
    /// Structurally invalid payload (bad length prefix, trailing garbage…).
    Malformed(&'static str),
    /// Filesystem error while reading or writing.
    Io(io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::TooShort => write!(f, "checkpoint too short"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "checkpoint crc mismatch (expected {expected:#010x}, found {found:#010x})"
                )
            }
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

// CRC-32 (IEEE 802.3 polynomial, reflected), table built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32/IEEE over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One flow-affinity entry: `key` was pinned to slot `slot` of its VR.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowRecord {
    pub key: FlowKey,
    pub slot: u32,
    pub last_seen_ns: u64,
}

/// Per-VR control-plane state (matched back by `name` on restore).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct VrCheckpoint {
    pub name: String,
    pub frames_in: u64,
    pub frames_out: u64,
    pub admitted: u64,
    pub shed: u64,
    pub weight: f64,
    pub shed_credit: f64,
    pub crash_streak: u32,
    pub last_crash_ns: u64,
    pub backoff_until_ns: u64,
    pub respawn_deficit: u32,
    pub quarantined: bool,
    /// Pressure level gauge encoding (0 normal, 1 pressured, 2 overloaded).
    pub pressure: u8,
    /// Live VRIs at checkpoint time — the restore target instance count.
    pub vri_slots: u32,
    pub flows: Vec<FlowRecord>,
}

/// The whole control-plane snapshot.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Checkpoint {
    pub epoch: u32,
    pub ts_ns: u64,
    pub stats: LvrmStats,
    pub next_vri: u32,
    pub vrs: Vec<VrCheckpoint>,
}

// ---- encoding ----------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn flow_key(&mut self, k: &FlowKey) {
        self.buf.extend_from_slice(&k.src.octets());
        self.buf.extend_from_slice(&k.dst.octets());
        self.u16(k.src_port);
        self.u16(k.dst_port);
        self.u8(k.proto.to_ip_proto());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(CheckpointError::Malformed("field past end of payload"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed("bool out of range")),
        }
    }
    fn str(&mut self) -> Result<String, CheckpointError> {
        let len = self.u32()? as usize;
        if len > 1 << 16 {
            return Err(CheckpointError::Malformed("string too long"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed("string not utf-8"))
    }
    fn flow_key(&mut self) -> Result<FlowKey, CheckpointError> {
        let src: [u8; 4] = self.take(4)?.try_into().expect("4 bytes");
        let dst: [u8; 4] = self.take(4)?.try_into().expect("4 bytes");
        let src_port = self.u16()?;
        let dst_port = self.u16()?;
        let proto = Protocol::from_ip_proto(self.u8()?);
        Ok(FlowKey { src: src.into(), dst: dst.into(), src_port, dst_port, proto })
    }
}

/// `LvrmStats` fields in wire order. One place to keep encode/decode and
/// the field count in sync.
fn stats_fields(s: &LvrmStats) -> [u64; 19] {
    [
        s.frames_in,
        s.frames_out,
        s.unclassified,
        s.dispatch_drops,
        s.no_vri_drops,
        s.shrink_lost,
        s.control_relayed,
        s.control_drops,
        s.redispatched,
        s.crash_lost,
        s.quarantined_drops,
        s.vri_deaths,
        s.respawns,
        s.retired_dispatch_drops,
        s.shed_early,
        s.reclaimed,
        s.queue_lost,
        s.retired_dispatched,
        s.retired_returned,
    ]
}

fn stats_from_fields(f: [u64; 19]) -> LvrmStats {
    LvrmStats {
        frames_in: f[0],
        frames_out: f[1],
        unclassified: f[2],
        dispatch_drops: f[3],
        no_vri_drops: f[4],
        shrink_lost: f[5],
        control_relayed: f[6],
        control_drops: f[7],
        redispatched: f[8],
        crash_lost: f[9],
        quarantined_drops: f[10],
        vri_deaths: f[11],
        respawns: f[12],
        retired_dispatch_drops: f[13],
        shed_early: f[14],
        reclaimed: f[15],
        queue_lost: f[16],
        retired_dispatched: f[17],
        retired_returned: f[18],
    }
}

impl Checkpoint {
    /// Serialize to the versioned, CRC-trailed wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc { buf: Vec::with_capacity(256) };
        e.buf.extend_from_slice(&CHECKPOINT_MAGIC);
        e.u32(CHECKPOINT_VERSION);
        e.u32(self.epoch);
        e.u64(self.ts_ns);
        for v in stats_fields(&self.stats) {
            e.u64(v);
        }
        e.u32(self.next_vri);
        e.u32(self.vrs.len() as u32);
        for vr in &self.vrs {
            e.str(&vr.name);
            e.u64(vr.frames_in);
            e.u64(vr.frames_out);
            e.u64(vr.admitted);
            e.u64(vr.shed);
            e.f64(vr.weight);
            e.f64(vr.shed_credit);
            e.u32(vr.crash_streak);
            e.u64(vr.last_crash_ns);
            e.u64(vr.backoff_until_ns);
            e.u32(vr.respawn_deficit);
            e.u8(vr.quarantined as u8);
            e.u8(vr.pressure);
            e.u32(vr.vri_slots);
            e.u32(vr.flows.len() as u32);
            for f in &vr.flows {
                e.flow_key(&f.key);
                e.u32(f.slot);
                e.u64(f.last_seen_ns);
            }
        }
        let crc = crc32(&e.buf);
        e.u32(crc);
        e.buf
    }

    /// Parse and verify a blob. Never panics; every malformation maps to a
    /// [`CheckpointError`].
    pub fn decode(buf: &[u8]) -> Result<Checkpoint, CheckpointError> {
        // magic + version + epoch + ts + stats + next_vri + vr count + crc
        if buf.len() < 4 + 4 + 4 + 8 + 19 * 8 + 4 + 4 + 4 {
            return Err(CheckpointError::TooShort);
        }
        if buf[..4] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let body = &buf[..buf.len() - 4];
        let found = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
        let expected = crc32(body);
        if found != expected {
            return Err(CheckpointError::BadChecksum { expected, found });
        }
        let mut d = Dec { buf: body, pos: 4 };
        let version = d.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let epoch = d.u32()?;
        let ts_ns = d.u64()?;
        let mut fields = [0u64; 19];
        for f in fields.iter_mut() {
            *f = d.u64()?;
        }
        let stats = stats_from_fields(fields);
        let next_vri = d.u32()?;
        let n_vrs = d.u32()? as usize;
        if n_vrs > 1 << 16 {
            return Err(CheckpointError::Malformed("implausible vr count"));
        }
        let mut vrs = Vec::with_capacity(n_vrs.min(1024));
        for _ in 0..n_vrs {
            let name = d.str()?;
            let frames_in = d.u64()?;
            let frames_out = d.u64()?;
            let admitted = d.u64()?;
            let shed = d.u64()?;
            let weight = d.f64()?;
            let shed_credit = d.f64()?;
            let crash_streak = d.u32()?;
            let last_crash_ns = d.u64()?;
            let backoff_until_ns = d.u64()?;
            let respawn_deficit = d.u32()?;
            let quarantined = d.bool()?;
            let pressure = d.u8()?;
            if pressure > 2 {
                return Err(CheckpointError::Malformed("pressure level out of range"));
            }
            let vri_slots = d.u32()?;
            let n_flows = d.u32()? as usize;
            if n_flows > 1 << 24 {
                return Err(CheckpointError::Malformed("implausible flow count"));
            }
            let mut flows = Vec::with_capacity(n_flows.min(65536));
            for _ in 0..n_flows {
                let key = d.flow_key()?;
                let slot = d.u32()?;
                let last_seen_ns = d.u64()?;
                flows.push(FlowRecord { key, slot, last_seen_ns });
            }
            vrs.push(VrCheckpoint {
                name,
                frames_in,
                frames_out,
                admitted,
                shed,
                weight,
                shed_credit,
                crash_streak,
                last_crash_ns,
                backoff_until_ns,
                respawn_deficit,
                quarantined,
                pressure,
                vri_slots,
                flows,
            });
        }
        if d.pos != body.len() {
            return Err(CheckpointError::Malformed("trailing bytes after payload"));
        }
        Ok(Checkpoint { epoch, ts_ns, stats, next_vri, vrs })
    }

    /// Write to `path` via a sibling `.tmp` file and an atomic rename, so a
    /// crash mid-write never leaves a torn checkpoint where a reader (or
    /// the next restore) expects a whole one.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.encode();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and verify the checkpoint at `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Checkpoint::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample() -> Checkpoint {
        Checkpoint {
            epoch: 3,
            ts_ns: 123_456_789,
            stats: LvrmStats {
                frames_in: 600,
                frames_out: 590,
                dispatch_drops: 10,
                ..Default::default()
            },
            next_vri: 9,
            vrs: vec![
                VrCheckpoint {
                    name: "deptA".into(),
                    frames_in: 400,
                    frames_out: 395,
                    admitted: 398,
                    shed: 2,
                    weight: 2.5,
                    shed_credit: 0.75,
                    crash_streak: 1,
                    last_crash_ns: 77,
                    backoff_until_ns: 99,
                    respawn_deficit: 1,
                    quarantined: false,
                    pressure: 2,
                    vri_slots: 3,
                    flows: vec![FlowRecord {
                        key: FlowKey {
                            src: Ipv4Addr::new(10, 0, 1, 5),
                            dst: Ipv4Addr::new(10, 0, 2, 9),
                            src_port: 4242,
                            dst_port: 80,
                            proto: Protocol::Udp,
                        },
                        slot: 1,
                        last_seen_ns: 1234,
                    }],
                },
                VrCheckpoint { name: "deptB".into(), quarantined: true, ..Default::default() },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ck = sample();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).expect("decodes");
        assert_eq!(back, ck);
    }

    #[test]
    fn crc_is_stable_and_detects_flips() {
        // Known-answer: CRC-32/IEEE of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let r = Checkpoint::decode(&bad);
            assert!(r.is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..len]).is_err(), "truncation to {len} accepted");
        }
    }

    #[test]
    fn wrong_version_and_magic_are_distinct_errors() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(Checkpoint::decode(&bytes), Err(CheckpointError::BadMagic)));
        let mut bytes = sample().encode();
        bytes[4] = 99; // version — also breaks the CRC unless re-trailed
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert!(matches!(Checkpoint::decode(&bytes), Err(CheckpointError::BadVersion(99))));
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join("lvrm-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.ck");
        let ck = sample();
        ck.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        assert!(!path.with_extension("ck.tmp").exists(), "tmp file renamed away");
        std::fs::remove_file(&path).ok();
    }
}
