//! Active/standby monitor high availability (DESIGN.md §13).
//!
//! One LVRM process is still one failure domain: PRs 2–5 made VRIs,
//! adapters, and restarts fault-tolerant, but a monitor crash takes every
//! hosted VR down until an operator restarts it. This module pairs two
//! monitors in an RFC 5798 (VRRP)–style **active/standby** arrangement:
//!
//! * **Election.** Each node runs a tiny [`Role`] state machine —
//!   `Backup → Master` on master-down timeout, `Master → Backup` on a
//!   higher-priority advert, `Master → Draining → Backup` on a graceful
//!   priority-0 handoff. Adverts carry `(priority, node_id, term, epoch)`
//!   and flow over a pluggable [`PeerLink`] (an in-process channel pair in
//!   tests, UDP in `lvrmd`). The master-down interval is the RFC's
//!   `3 × advert_interval + skew`, with `skew = (256 − priority)/256 ×
//!   advert_interval`, so failover detection is sub-second at the default
//!   150 ms advert interval.
//!
//! * **Replication.** The master streams [`CheckpointDelta`]s — compact,
//!   CRC-trailed diffs of the PR 5 warm-restart [`Checkpoint`] — to the
//!   standby, which folds them into a **shadow checkpoint**. Gaps in the
//!   sequence trigger a `SyncReq`/full-snapshot resync, so loss on the
//!   peer link degrades freshness, never correctness.
//!
//! * **Promotion.** On master-down the standby applies its shadow through
//!   the existing `apply_checkpoint` path. Because `build_checkpoint`
//!   folds in-flight frames into `crash_lost`/`queue_lost` when the master
//!   built the snapshot, the promoted books satisfy all four conservation
//!   identities **by construction** — takeover is a warm restart whose
//!   checkpoint arrived over the wire.
//!
//! ## Split-brain guard
//!
//! Classic VRRP accepts a dual-master window when adverts are delayed or
//! lost while the master still lives. Two guards shrink that window to
//! zero for every single-fault case (master death, advert loss bursts
//! shorter than the master-down interval, delayed delivery, asymmetric
//! partition):
//!
//! 1. **Promotion probation.** A freshly promoted master adverts
//!    immediately but does **not** accept frames for one advert interval.
//!    If the old master is alive and reachable, its next advert lands
//!    inside the probation window and the usurper steps down having never
//!    accepted a frame.
//! 2. **Preempt-on-heal.** A master that hears a higher-priority (or
//!    equal-priority, higher node-id) advert steps down immediately.
//!
//! A *symmetric* partition longer than the master-down interval with both
//! nodes alive is the CAP-impossible case: no 2-node protocol can keep
//! both safety and liveness there without an external arbiter, so — like
//! VRRP itself — the design documents the bound instead of pretending to
//! beat it (DESIGN.md §13 has the full argument).

use lvrm_metrics::{Counter, Gauge, MetricsRegistry};

use crate::checkpoint::{crc32, Checkpoint, CheckpointDelta, CheckpointError, Dec, Enc};
use crate::clock::Clock;
use crate::config::HaConfig;
use crate::fault::jittered_backoff;
use crate::host::VriHost;
use crate::monitor::Lvrm;

/// Leading magic of every HA wire message.
pub const HA_MAGIC: [u8; 4] = *b"LVHA";
/// HA wire protocol version.
pub const HA_VERSION: u8 = 1;

/// Election role of one monitor in the active/standby pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Listening for adverts, folding deltas, armed to promote.
    Backup,
    /// Owning the dataplane: accepting frames, adverting, streaming deltas.
    Master,
    /// Graceful handoff in flight: advertised priority 0, not accepting,
    /// waiting for the peer to take over before dropping to `Backup`.
    Draining,
}

impl Role {
    /// Gauge encoding for `lvrm_ha_role` (0 backup, 1 master, 2 draining).
    pub fn as_gauge(self) -> f64 {
        match self {
            Role::Backup => 0.0,
            Role::Master => 1.0,
            Role::Draining => 2.0,
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Backup => write!(f, "backup"),
            Role::Master => write!(f, "master"),
            Role::Draining => write!(f, "draining"),
        }
    }
}

/// One message on the peer link. Everything is little-endian with an
/// `LVHA` magic, a version byte, and a trailing CRC-32, so a flipped bit
/// anywhere is a counted reject, never a state transition.
#[derive(Clone, Debug, PartialEq)]
pub enum HaMsg {
    /// Master heartbeat. `priority == 0` means "resigning" (RFC 5798
    /// graceful handoff): the peer shortens its master-down timer to skew.
    Advert { term: u64, node_id: u64, priority: u8, epoch: u32, seq: u64 },
    /// Standby → master: progress report (freshest folded stream seq).
    Ack { term: u64, acked_seq: u64, shadow_epoch: u32 },
    /// Master → standby: one encoded [`CheckpointDelta`].
    Delta { bytes: Vec<u8> },
    /// Master → standby: a full encoded [`Checkpoint`] at stream position
    /// `seq`, re-baselining the shadow.
    Snapshot { seq: u64, bytes: Vec<u8> },
    /// Standby → master: the stream gapped (or never started) — send a
    /// full snapshot.
    SyncReq { have_seq: u64 },
}

impl HaMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc { buf: Vec::with_capacity(64) };
        e.buf.extend_from_slice(&HA_MAGIC);
        e.u8(HA_VERSION);
        match self {
            HaMsg::Advert { term, node_id, priority, epoch, seq } => {
                e.u8(0);
                e.u64(*term);
                e.u64(*node_id);
                e.u8(*priority);
                e.u32(*epoch);
                e.u64(*seq);
            }
            HaMsg::Ack { term, acked_seq, shadow_epoch } => {
                e.u8(1);
                e.u64(*term);
                e.u64(*acked_seq);
                e.u32(*shadow_epoch);
            }
            HaMsg::Delta { bytes } => {
                e.u8(2);
                e.u32(bytes.len() as u32);
                e.buf.extend_from_slice(bytes);
            }
            HaMsg::Snapshot { seq, bytes } => {
                e.u8(3);
                e.u64(*seq);
                e.u32(bytes.len() as u32);
                e.buf.extend_from_slice(bytes);
            }
            HaMsg::SyncReq { have_seq } => {
                e.u8(4);
                e.u64(*have_seq);
            }
        }
        let crc = crc32(&e.buf);
        e.u32(crc);
        e.buf
    }

    /// Parse and verify one wire message. Total: malformed input is an
    /// error, never a panic.
    pub fn decode(buf: &[u8]) -> Result<HaMsg, CheckpointError> {
        // magic + version + kind + crc
        if buf.len() < 4 + 1 + 1 + 4 {
            return Err(CheckpointError::TooShort);
        }
        if buf[..4] != HA_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let body = &buf[..buf.len() - 4];
        let found = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
        let expected = crc32(body);
        if found != expected {
            return Err(CheckpointError::BadChecksum { expected, found });
        }
        let mut d = Dec { buf: body, pos: 4 };
        let version = d.u8()?;
        if version != HA_VERSION {
            return Err(CheckpointError::BadVersion(version as u32));
        }
        let msg = match d.u8()? {
            0 => {
                let term = d.u64()?;
                let node_id = d.u64()?;
                let priority = d.u8()?;
                let epoch = d.u32()?;
                let seq = d.u64()?;
                HaMsg::Advert { term, node_id, priority, epoch, seq }
            }
            1 => {
                let term = d.u64()?;
                let acked_seq = d.u64()?;
                let shadow_epoch = d.u32()?;
                HaMsg::Ack { term, acked_seq, shadow_epoch }
            }
            2 => {
                let len = d.u32()? as usize;
                let bytes = d.take(len)?.to_vec();
                HaMsg::Delta { bytes }
            }
            3 => {
                let seq = d.u64()?;
                let len = d.u32()? as usize;
                let bytes = d.take(len)?.to_vec();
                HaMsg::Snapshot { seq, bytes }
            }
            _ => {
                let have_seq = d.u64()?;
                HaMsg::SyncReq { have_seq }
            }
        };
        if d.pos != body.len() {
            return Err(CheckpointError::Malformed("trailing bytes after payload"));
        }
        Ok(msg)
    }
}

/// Transport between the two monitors of a pair. Implementations are
/// datagram-shaped and best-effort: `send` may silently drop (the
/// protocol tolerates loss), `recv` drains everything currently queued.
/// `now_ns` threads the caller's clock through so fault-injection
/// wrappers can delay deterministically.
pub trait PeerLink {
    fn send(&mut self, now_ns: u64, bytes: &[u8]);
    fn recv(&mut self, now_ns: u64, out: &mut Vec<Vec<u8>>);
}

/// In-process [`PeerLink`]: a pair of unbounded queues, one per
/// direction. `ChannelLink::pair()` wires two nodes together for the
/// testbed and the chaos suites.
pub struct ChannelLink {
    tx: std::sync::Arc<std::sync::Mutex<std::collections::VecDeque<Vec<u8>>>>,
    rx: std::sync::Arc<std::sync::Mutex<std::collections::VecDeque<Vec<u8>>>>,
}

impl ChannelLink {
    pub fn pair() -> (ChannelLink, ChannelLink) {
        let a2b = std::sync::Arc::new(std::sync::Mutex::new(std::collections::VecDeque::new()));
        let b2a = std::sync::Arc::new(std::sync::Mutex::new(std::collections::VecDeque::new()));
        (ChannelLink { tx: a2b.clone(), rx: b2a.clone() }, ChannelLink { tx: b2a, rx: a2b })
    }
}

impl PeerLink for ChannelLink {
    fn send(&mut self, _now_ns: u64, bytes: &[u8]) {
        self.tx.lock().expect("link poisoned").push_back(bytes.to_vec());
    }
    fn recv(&mut self, _now_ns: u64, out: &mut Vec<Vec<u8>>) {
        let mut q = self.rx.lock().expect("link poisoned");
        out.extend(q.drain(..));
    }
}

/// One monitor's half of the active/standby pair: election state,
/// replication stream state, and the metrics that expose both. Attached
/// to an [`Lvrm`] via [`Lvrm::attach_ha`] and ticked from every
/// `maybe_reallocate` call (the fast advert sub-tick rides the host loop,
/// not the lazy 1 s allocation gate).
pub struct HaNode {
    cfg: HaConfig,
    link: Box<dyn PeerLink>,
    role: Role,
    /// Election term: bumped on every timeout-promotion, echoed in adverts
    /// — observability for "how many failovers has this pair seen".
    term: u64,
    advert_seq: u64,
    accepting: bool,
    started: bool,
    /// Backup: promote when `now` reaches this.
    master_down_at_ns: u64,
    /// Master: probation — no frame acceptance before this instant.
    probation_until_ns: u64,
    /// Draining: drop to Backup at this instant.
    drain_until_ns: u64,
    /// Set by a manual handoff: suppresses preemption so the resigned node
    /// stays backup while the peer lives (cleared on the next promotion —
    /// i.e. when the peer actually dies).
    resigned: bool,
    last_advert_tx_ns: u64,
    last_advert_rx_ns: Option<u64>,
    // ---- master-side replication stream ----
    stream_seq: u64,
    last_streamed: Option<Checkpoint>,
    last_delta_tx_ns: u64,
    want_snapshot: bool,
    peer_acked_seq: u64,
    peer_ever_acked: bool,
    // ---- standby-side shadow ----
    shadow: Option<Checkpoint>,
    shadow_seq: u64,
    /// When the last `SyncReq` went out, if a resync is in flight. Gapped
    /// deltas arrive at the stream cadence; re-requesting on every one of
    /// them turns a single lost Snapshot into a storm of N duplicate
    /// re-baselines. At most one SyncReq per backoff interval instead.
    last_syncreq_tx_ns: Option<u64>,
    /// Consecutive SyncReqs without a Snapshot landing: exponent of the
    /// backoff (capped), reset by any snapshot or in-sequence delta.
    syncreq_streak: u32,
    // ---- metrics ----
    registry: MetricsRegistry,
    m_role: Gauge,
    m_transitions: Counter,
    m_adverts_tx: Counter,
    m_adverts_rx: Counter,
    m_delta_bytes: Counter,
    m_delta_lag: Gauge,
    m_failover_ns: Gauge,
    m_rejected: Counter,
    recv_scratch: Vec<Vec<u8>>,
}

impl HaNode {
    pub fn new(cfg: HaConfig, link: Box<dyn PeerLink>, registry: &MetricsRegistry) -> HaNode {
        let m_role = registry.gauge(
            "lvrm_ha_role",
            "HA election role (0 backup, 1 master, 2 draining).",
            &[],
        );
        m_role.set(Role::Backup.as_gauge());
        let m_transitions =
            registry.counter("lvrm_ha_transitions_total", "HA role transitions.", &[]);
        let m_adverts_tx = registry.counter("lvrm_ha_adverts_tx_total", "VRRP adverts sent.", &[]);
        let m_adverts_rx =
            registry.counter("lvrm_ha_adverts_rx_total", "VRRP adverts received.", &[]);
        let m_delta_bytes = registry.counter(
            "lvrm_ha_delta_bytes_total",
            "Replication payload bytes streamed to the standby (deltas + snapshots).",
            &[],
        );
        let m_delta_lag = registry.gauge(
            "lvrm_ha_delta_lag",
            "Replication lag: stream positions sent but not yet acked by the standby.",
            &[],
        );
        let m_failover_ns = registry.gauge(
            "lvrm_ha_failover_ns",
            "Last takeover latency: from final master contact to accepting frames.",
            &[],
        );
        let m_rejected = registry.counter(
            "lvrm_ha_msgs_rejected_total",
            "Peer-link messages dropped as malformed (bad magic/CRC/structure).",
            &[],
        );
        HaNode {
            cfg,
            link,
            role: Role::Backup,
            term: 0,
            advert_seq: 0,
            accepting: false,
            started: false,
            master_down_at_ns: 0,
            probation_until_ns: 0,
            drain_until_ns: 0,
            resigned: false,
            last_advert_tx_ns: 0,
            last_advert_rx_ns: None,
            stream_seq: 0,
            last_streamed: None,
            last_delta_tx_ns: 0,
            want_snapshot: false,
            peer_acked_seq: 0,
            peer_ever_acked: false,
            shadow: None,
            shadow_seq: 0,
            last_syncreq_tx_ns: None,
            syncreq_streak: 0,
            registry: registry.clone(),
            m_role,
            m_transitions,
            m_adverts_tx,
            m_adverts_rx,
            m_delta_bytes,
            m_delta_lag,
            m_failover_ns,
            m_rejected,
            recv_scratch: Vec::new(),
        }
    }

    pub fn role(&self) -> Role {
        self.role
    }

    /// True while this node owns the dataplane: `Master`, past promotion
    /// probation. Hosts gate ingress on this.
    pub fn accepting(&self) -> bool {
        self.accepting
    }

    pub fn term(&self) -> u64 {
        self.term
    }

    /// The standby's replicated view of the master's control plane, if the
    /// stream has delivered a baseline yet.
    pub fn shadow(&self) -> Option<&Checkpoint> {
        self.shadow.as_ref()
    }

    /// Stream positions sent but not yet acknowledged by the standby.
    pub fn delta_lag(&self) -> u64 {
        self.stream_seq.saturating_sub(self.peer_acked_seq)
    }

    /// Request a graceful handoff (the SIGUSR1 / manual-failover entry
    /// point): a master adverts priority 0 and drains; a backup ignores it.
    pub fn request_handoff(&mut self, now_ns: u64) {
        if self.role != Role::Master {
            return;
        }
        self.send_advert(now_ns, 0);
        self.set_role(now_ns, Role::Draining);
        self.accepting = false;
        // Manual failover is sticky: don't preempt the peer back off the
        // mastership we just handed it (cleared if the peer later dies).
        self.resigned = true;
        // Long enough for the peer's skew timer to fire and its first
        // advert to come back; then we rejoin as a plain backup.
        self.drain_until_ns = now_ns + 2 * self.cfg.advert_interval_ns + self.cfg.skew_ns();
    }

    /// One HA sub-tick: drain the peer link, run the role timers, stream
    /// replication. Called from `Lvrm::maybe_reallocate` on **every**
    /// invocation (ahead of the lazy 1 s allocation gate), so advert
    /// cadence is bounded by the host loop, not the control tick.
    pub fn tick<C: Clock>(&mut self, now_ns: u64, lvrm: &mut Lvrm<C>, host: &mut dyn VriHost) {
        if !self.started {
            self.started = true;
            self.master_down_at_ns = now_ns + self.cfg.master_down_ns();
        }
        let mut inbox = std::mem::take(&mut self.recv_scratch);
        inbox.clear();
        self.link.recv(now_ns, &mut inbox);
        for raw in inbox.drain(..) {
            match HaMsg::decode(&raw) {
                Ok(msg) => self.on_msg(now_ns, msg),
                Err(_) => self.m_rejected.inc(),
            }
        }
        self.recv_scratch = inbox;

        match self.role {
            Role::Backup => {
                if now_ns >= self.master_down_at_ns {
                    self.promote(now_ns, lvrm, host);
                }
            }
            Role::Master => {
                if !self.accepting && now_ns >= self.probation_until_ns {
                    self.accepting = true;
                    if let Some(last_rx) = self.last_advert_rx_ns {
                        let failover = now_ns.saturating_sub(last_rx);
                        self.m_failover_ns.set(failover as f64);
                        self.registry.push_event(
                            now_ns,
                            format!(
                                "ha-failover-complete term={} latency_ns={failover}",
                                self.term
                            ),
                        );
                    }
                }
                if now_ns.saturating_sub(self.last_advert_tx_ns) >= self.cfg.advert_interval_ns {
                    self.send_advert(now_ns, self.cfg.priority);
                }
                if now_ns.saturating_sub(self.last_delta_tx_ns) >= self.cfg.delta_interval_ns {
                    self.stream_state(now_ns, lvrm);
                }
            }
            Role::Draining => {
                if now_ns >= self.drain_until_ns {
                    self.set_role(now_ns, Role::Backup);
                    self.master_down_at_ns = now_ns + self.cfg.master_down_ns();
                }
            }
        }
        self.m_delta_lag.set(self.delta_lag() as f64);
    }

    fn on_msg(&mut self, now_ns: u64, msg: HaMsg) {
        match msg {
            HaMsg::Advert { term, node_id, priority, epoch: _, seq: _ } => {
                self.m_adverts_rx.inc();
                self.term = self.term.max(term);
                if priority == 0 {
                    // Peer is resigning: take over after skew only.
                    if self.role == Role::Backup {
                        self.master_down_at_ns =
                            self.master_down_at_ns.min(now_ns + self.cfg.skew_ns());
                    }
                    return;
                }
                self.last_advert_rx_ns = Some(now_ns);
                let peer_wins = priority > self.cfg.priority
                    || (priority == self.cfg.priority && node_id > self.cfg.node_id);
                match self.role {
                    Role::Backup => {
                        // RFC 5798: with preemption, a backup that outranks
                        // the master discards its adverts and lets the
                        // master-down timer elect it; otherwise every
                        // advert re-arms the timer. A node that manually
                        // resigned never preempts a living peer.
                        if !self.cfg.preempt || self.resigned || !self.outranks(priority, node_id) {
                            self.master_down_at_ns = now_ns + self.cfg.master_down_ns();
                        }
                        self.send_ack(now_ns);
                    }
                    Role::Master => {
                        if peer_wins {
                            // Preempt-on-heal: the rightful master is back
                            // (or was never gone) — step down at once.
                            self.accepting = false;
                            self.set_role(now_ns, Role::Backup);
                            self.master_down_at_ns = now_ns + self.cfg.master_down_ns();
                            self.send_ack(now_ns);
                        }
                    }
                    Role::Draining => {
                        // Peer took over — finish the handoff early.
                        self.set_role(now_ns, Role::Backup);
                        self.master_down_at_ns = now_ns + self.cfg.master_down_ns();
                    }
                }
            }
            HaMsg::Ack { term: _, acked_seq, shadow_epoch: _ } => {
                self.peer_ever_acked = true;
                self.peer_acked_seq = self.peer_acked_seq.max(acked_seq);
            }
            HaMsg::Delta { bytes } => match CheckpointDelta::decode(&bytes) {
                Ok(delta) => self.fold_delta(now_ns, delta),
                Err(_) => self.m_rejected.inc(),
            },
            HaMsg::Snapshot { seq, bytes } => match Checkpoint::decode(&bytes) {
                Ok(ck) => {
                    self.shadow = Some(ck);
                    self.shadow_seq = seq;
                    // Re-baseline landed: the resync is over, clear the
                    // SyncReq backoff so a future gap re-requests promptly.
                    self.last_syncreq_tx_ns = None;
                    self.syncreq_streak = 0;
                    self.send_ack(now_ns);
                }
                Err(_) => self.m_rejected.inc(),
            },
            HaMsg::SyncReq { have_seq: _ } => {
                if self.role == Role::Master {
                    self.want_snapshot = true;
                }
            }
        }
    }

    fn outranks(&self, peer_priority: u8, peer_node_id: u64) -> bool {
        self.cfg.priority > peer_priority
            || (self.cfg.priority == peer_priority && self.cfg.node_id > peer_node_id)
    }

    /// Standby: fold one delta into the shadow, or flag a gap for resync.
    fn fold_delta(&mut self, now_ns: u64, delta: CheckpointDelta) {
        match &mut self.shadow {
            Some(shadow) if delta.seq == self.shadow_seq + 1 => {
                shadow.fold(&delta);
                self.shadow_seq = delta.seq;
                self.last_syncreq_tx_ns = None;
                self.syncreq_streak = 0;
                self.send_ack(now_ns);
            }
            Some(_) if delta.seq <= self.shadow_seq => {
                // Stale duplicate (re-delivery after resync) — ack, don't fold.
                self.send_ack(now_ns);
            }
            _ => {
                // One in-flight SyncReq at a time, with jittered exponential
                // backoff: on a lossy link every gapped delta used to
                // re-request, and every request the master *did* hear
                // answered with a full Snapshot re-baseline — N duplicate
                // snapshots for one gap. The retry (not the suppression)
                // still guarantees a lost SyncReq or a lost Snapshot reply
                // cannot wedge the resync.
                let due = match self.last_syncreq_tx_ns {
                    None => true,
                    Some(last) => {
                        let base = self
                            .cfg
                            .advert_interval_ns
                            .saturating_mul(1 << self.syncreq_streak.min(3));
                        now_ns.saturating_sub(last)
                            >= jittered_backoff(base, self.cfg.node_id, self.syncreq_streak as u64)
                    }
                };
                if due {
                    self.last_syncreq_tx_ns = Some(now_ns);
                    self.syncreq_streak = self.syncreq_streak.saturating_add(1);
                    let msg = HaMsg::SyncReq { have_seq: self.shadow_seq };
                    self.link.send(now_ns, &msg.encode());
                }
            }
        }
    }

    /// Master: emit one replication step — a delta against the last
    /// streamed snapshot, or a full snapshot when (re)baselining.
    fn stream_state<C: Clock>(&mut self, now_ns: u64, lvrm: &mut Lvrm<C>) {
        self.last_delta_tx_ns = now_ns;
        let ck = lvrm.build_checkpoint(now_ns);
        self.stream_seq += 1;
        let msg = match self.last_streamed.as_ref() {
            Some(prev) if !self.want_snapshot => {
                let delta = CheckpointDelta::diff(prev, &ck, self.stream_seq);
                HaMsg::Delta { bytes: delta.encode() }
            }
            _ => {
                self.want_snapshot = false;
                HaMsg::Snapshot { seq: self.stream_seq, bytes: ck.encode() }
            }
        };
        let wire = msg.encode();
        self.m_delta_bytes.add(wire.len() as u64);
        self.link.send(now_ns, &wire);
        self.last_streamed = Some(ck);
    }

    fn send_advert(&mut self, now_ns: u64, priority: u8) {
        self.advert_seq += 1;
        let msg = HaMsg::Advert {
            term: self.term,
            node_id: self.cfg.node_id,
            priority,
            epoch: 0,
            seq: self.advert_seq,
        };
        self.link.send(now_ns, &msg.encode());
        self.last_advert_tx_ns = now_ns;
        self.m_adverts_tx.inc();
    }

    fn send_ack(&mut self, now_ns: u64) {
        let shadow_epoch = self.shadow.as_ref().map_or(0, |s| s.epoch);
        let msg = HaMsg::Ack { term: self.term, acked_seq: self.shadow_seq, shadow_epoch };
        self.link.send(now_ns, &msg.encode());
    }

    /// Backup → Master on master-down: apply the shadow checkpoint (the
    /// warm-restart path — in-flight frames were already charged to
    /// `crash_lost`/`queue_lost` when the master built it), start
    /// probation, advert immediately.
    fn promote<C: Clock>(&mut self, now_ns: u64, lvrm: &mut Lvrm<C>, host: &mut dyn VriHost) {
        self.term += 1;
        self.resigned = false;
        if let Some(shadow) = self.shadow.take() {
            let epoch = lvrm.apply_checkpoint(&shadow, now_ns, host);
            self.registry.push_event(
                now_ns,
                format!(
                    "ha-promoted-from-shadow term={} epoch={epoch} shadow_seq={}",
                    self.term, self.shadow_seq
                ),
            );
        } else {
            self.registry.push_event(now_ns, format!("ha-promoted-cold term={}", self.term));
        }
        self.set_role(now_ns, Role::Master);
        self.probation_until_ns = now_ns + self.cfg.advert_interval_ns;
        self.accepting = false;
        // The promoted node re-baselines its own outbound stream.
        self.last_streamed = None;
        self.want_snapshot = false;
        self.peer_ever_acked = false;
        self.peer_acked_seq = self.stream_seq;
        self.send_advert(now_ns, self.cfg.priority);
        self.last_delta_tx_ns = now_ns;
    }

    fn set_role(&mut self, now_ns: u64, to: Role) {
        if self.role == to {
            return;
        }
        self.registry
            .push_event(now_ns, format!("ha-role from={} to={to} term={}", self.role, self.term));
        self.role = to;
        self.m_role.set(to.as_gauge());
        self.m_transitions.inc();
        if to != Role::Master {
            self.accepting = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(priority: u8, node_id: u64) -> HaConfig {
        HaConfig { priority, node_id, ..Default::default() }
    }

    #[test]
    fn skew_and_master_down_follow_rfc_5798() {
        let c = cfg(100, 1);
        let advert = c.advert_interval_ns;
        assert_eq!(c.skew_ns(), (256 - 100) * advert / 256);
        assert_eq!(c.master_down_ns(), 3 * advert + c.skew_ns());
        // Higher priority → shorter skew → faster takeover.
        assert!(cfg(200, 1).skew_ns() < cfg(50, 1).skew_ns());
    }

    #[test]
    fn msg_codec_roundtrip_and_rejection() {
        let msgs = [
            HaMsg::Advert { term: 3, node_id: 9, priority: 100, epoch: 2, seq: 41 },
            HaMsg::Ack { term: 3, acked_seq: 17, shadow_epoch: 2 },
            HaMsg::Delta { bytes: vec![1, 2, 3, 4] },
            HaMsg::Snapshot { seq: 18, bytes: vec![9, 8, 7] },
            HaMsg::SyncReq { have_seq: 11 },
        ];
        for m in &msgs {
            let wire = m.encode();
            assert_eq!(&HaMsg::decode(&wire).expect("decodes"), m);
            for i in 0..wire.len() {
                let mut bad = wire.clone();
                bad[i] ^= 0x10;
                assert!(HaMsg::decode(&bad).is_err(), "flip at {i} accepted");
            }
            for len in 0..wire.len() {
                assert!(HaMsg::decode(&wire[..len]).is_err(), "truncation to {len} accepted");
            }
        }
    }

    #[test]
    fn channel_link_delivers_both_ways() {
        let (mut a, mut b) = ChannelLink::pair();
        a.send(0, b"hello");
        b.send(0, b"world");
        let mut out = Vec::new();
        b.recv(0, &mut out);
        assert_eq!(out, vec![b"hello".to_vec()]);
        out.clear();
        a.recv(0, &mut out);
        assert_eq!(out, vec![b"world".to_vec()]);
    }
}
