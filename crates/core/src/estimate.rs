//! Per-VRI load estimation (paper §3.4, Fig. 3.4).
//!
//! "When the VRI adapter forwards a data frame to the VRI, it measures the
//! load by observing the current queue length. It then computes the
//! exponential weighted average queue length of the incoming data queue of
//! each VRI." The pseudocode also sketches an inter-arrival-time variant;
//! both are provided.

use lvrm_ipc::{PressureLevel, Watermarks};
use lvrm_metrics::Ewma;

/// Estimates one VRI's load; consulted by the load balancer on every
/// dispatch ("estimate: called upon receipt of a packet").
pub trait LoadEstimator: Send {
    /// Observe a dispatch to the VRI: the data queue held `queue_len` items
    /// at time `now_ns` (after the push).
    fn on_dispatch(&mut self, queue_len: usize, now_ns: u64);

    /// Observe the VRI's current queue depth *without* a dispatch. Called
    /// for every VRI on every balancing decision (Fig. 3.4's `estimate` runs
    /// "upon receipt of a packet" and reads the ring buffer's data count),
    /// so estimates track reality even for VRIs the balancer is currently
    /// avoiding — otherwise a stale high estimate would freeze and starve a
    /// VRI forever. Estimators keyed on dispatch events ignore this.
    fn observe(&mut self, _queue_len: usize, _now_ns: u64) {}

    /// Current smoothed load. Higher = more loaded. Fresh estimators return
    /// 0 so new VRIs attract traffic immediately.
    fn estimate(&self) -> f64;

    /// Reset all history (VRI recycled).
    fn reset(&mut self);

    fn name(&self) -> &'static str;
}

/// EWMA of the incoming data queue length — the paper's default.
#[derive(Clone, Debug)]
pub struct EwmaQueueLength {
    ewma: Ewma,
}

impl EwmaQueueLength {
    pub fn new(weight: f64) -> EwmaQueueLength {
        EwmaQueueLength { ewma: Ewma::new(weight) }
    }
}

impl LoadEstimator for EwmaQueueLength {
    fn on_dispatch(&mut self, queue_len: usize, _now_ns: u64) {
        self.ewma.update(queue_len as f64);
    }

    fn observe(&mut self, queue_len: usize, _now_ns: u64) {
        self.ewma.update(queue_len as f64);
    }

    fn estimate(&self) -> f64 {
        self.ewma.value_or(0.0)
    }

    fn reset(&mut self) {
        self.ewma.reset();
    }

    fn name(&self) -> &'static str {
        "ewma-queue-length"
    }
}

/// EWMA of inter-arrival times, inverted into a rate so that *higher still
/// means more loaded* (Fig. 3.4's "arrival time" branch measures the gap
/// between consecutive dispatches; short gaps = high load).
#[derive(Clone, Debug)]
pub struct EwmaInterArrival {
    ewma_gap_ns: Ewma,
    last_ns: Option<u64>,
}

impl EwmaInterArrival {
    pub fn new(weight: f64) -> EwmaInterArrival {
        EwmaInterArrival { ewma_gap_ns: Ewma::new(weight), last_ns: None }
    }
}

impl LoadEstimator for EwmaInterArrival {
    fn on_dispatch(&mut self, _queue_len: usize, now_ns: u64) {
        if let Some(prev) = self.last_ns {
            // Fig. 3.4 guards on "current time stamp is valid"; equal or
            // backwards stamps are skipped rather than folded in as zero.
            if now_ns > prev {
                self.ewma_gap_ns.update((now_ns - prev) as f64);
            }
        }
        self.last_ns = Some(now_ns);
    }

    fn estimate(&self) -> f64 {
        // Arrivals per second; 0 until two dispatches have been seen.
        match self.ewma_gap_ns.value() {
            Some(gap) if gap > 0.0 => 1e9 / gap,
            _ => 0.0,
        }
    }

    fn reset(&mut self) {
        self.ewma_gap_ns.reset();
        self.last_ns = None;
    }

    fn name(&self) -> &'static str {
        "ewma-inter-arrival"
    }
}

/// Hysteretic pressure state machine over queue occupancy (overload control,
/// DESIGN.md §8).
///
/// [`Watermarks::classify`] alone would flap between `Pressured` and
/// `Overloaded` while a queue hovers near the high mark; this tracker makes
/// the signal sticky: once `Overloaded`, a VR stays so until occupancy falls
/// back to the *low* mark, so shedding decisions don't oscillate burst to
/// burst.
#[derive(Clone, Copy, Debug, Default)]
pub struct PressureTracker {
    level: PressureLevel,
}

impl PressureTracker {
    /// Fold in the worst observed occupancy fraction for this refresh and
    /// return the (possibly unchanged) level.
    ///
    /// * `occupancy >= high` → `Overloaded`;
    /// * `occupancy <= low` → `Normal`;
    /// * in between → `Overloaded` stays `Overloaded` (hysteresis), anything
    ///   else reads `Pressured`.
    pub fn update(&mut self, occupancy: f64, wm: &Watermarks) -> PressureLevel {
        self.level = if occupancy >= wm.high {
            PressureLevel::Overloaded
        } else if occupancy <= wm.low {
            PressureLevel::Normal
        } else if self.level == PressureLevel::Overloaded {
            PressureLevel::Overloaded
        } else {
            PressureLevel::Pressured
        };
        self.level
    }

    /// Current level, as of the last [`update`](PressureTracker::update).
    pub fn level(&self) -> PressureLevel {
        self.level
    }

    /// Numeric encoding of the current level for the pressure gauge
    /// (0 normal, 1 pressured, 2 overloaded).
    pub fn level_gauge(&self) -> f64 {
        match self.level {
            PressureLevel::Normal => 0.0,
            PressureLevel::Pressured => 1.0,
            PressureLevel::Overloaded => 2.0,
        }
    }

    /// Reset to `Normal` (VR recycled).
    pub fn reset(&mut self) {
        self.level = PressureLevel::Normal;
    }

    /// Rebuild a tracker pinned at a checkpointed level (warm restart):
    /// hysteresis history survives the monitor, so a VR that checkpointed
    /// `Overloaded` stays sticky until occupancy truly falls to the low mark.
    pub fn restore(level: PressureLevel) -> PressureTracker {
        PressureTracker { level }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_tracker_is_hysteretic() {
        let wm = Watermarks::new(0.25, 0.75);
        let mut t = PressureTracker::default();
        assert_eq!(t.level(), PressureLevel::Normal);
        assert_eq!(t.update(0.5, &wm), PressureLevel::Pressured, "rising through the band");
        assert_eq!(t.update(0.8, &wm), PressureLevel::Overloaded);
        assert_eq!(t.update(0.5, &wm), PressureLevel::Overloaded, "sticky inside the band");
        assert_eq!(t.update(0.74, &wm), PressureLevel::Overloaded, "still sticky near the top");
        assert_eq!(t.update(0.25, &wm), PressureLevel::Normal, "released at the low mark");
        assert_eq!(t.update(0.5, &wm), PressureLevel::Pressured, "band reads pressured again");
        t.update(0.9, &wm);
        t.reset();
        assert_eq!(t.level(), PressureLevel::Normal);
    }

    #[test]
    fn queue_length_tracks_backlog() {
        let mut e = EwmaQueueLength::new(3.0);
        assert_eq!(e.estimate(), 0.0);
        e.on_dispatch(4, 0);
        assert_eq!(e.estimate(), 4.0);
        e.on_dispatch(8, 1);
        // (8 + 3*4)/4 = 5
        assert!((e.estimate() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn observe_decays_stale_estimates() {
        // A VRI that stops receiving dispatches must not keep its old high
        // estimate: observation of its (empty) queue drags it back down.
        let mut e = EwmaQueueLength::new(3.0);
        e.on_dispatch(40, 0);
        assert!(e.estimate() > 30.0);
        for t in 1..60 {
            e.observe(0, t);
        }
        assert!(e.estimate() < 0.01, "stale estimate must decay: {}", e.estimate());
        // The inter-arrival estimator ignores observation by design.
        let mut ia = EwmaInterArrival::new(0.0);
        ia.on_dispatch(0, 0);
        ia.on_dispatch(0, 1_000);
        let before = ia.estimate();
        ia.observe(0, 2_000);
        assert_eq!(ia.estimate(), before);
    }

    #[test]
    fn queue_length_reset_clears() {
        let mut e = EwmaQueueLength::new(1.0);
        e.on_dispatch(10, 0);
        e.reset();
        assert_eq!(e.estimate(), 0.0);
    }

    #[test]
    fn inter_arrival_estimates_rate() {
        let mut e = EwmaInterArrival::new(0.0);
        let mut t = 0;
        for _ in 0..10 {
            e.on_dispatch(0, t);
            t += 1_000_000; // 1 kHz
        }
        assert!((e.estimate() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn inter_arrival_ignores_non_monotonic_stamps() {
        let mut e = EwmaInterArrival::new(0.0);
        e.on_dispatch(0, 100);
        e.on_dispatch(0, 100); // duplicate
        e.on_dispatch(0, 50); // backwards
        assert_eq!(e.estimate(), 0.0, "no valid gap was observed");
    }

    #[test]
    fn higher_load_reads_higher_for_both() {
        // Queue-length: longer queues => larger estimate.
        let mut q1 = EwmaQueueLength::new(1.0);
        let mut q2 = EwmaQueueLength::new(1.0);
        for i in 0..10 {
            q1.on_dispatch(2, i);
            q2.on_dispatch(20, i);
        }
        assert!(q2.estimate() > q1.estimate());
        // Inter-arrival: faster arrivals => larger estimate.
        let mut a1 = EwmaInterArrival::new(1.0);
        let mut a2 = EwmaInterArrival::new(1.0);
        for i in 0..10u64 {
            a1.on_dispatch(0, i * 1_000_000);
            a2.on_dispatch(0, i * 10_000);
        }
        assert!(a2.estimate() > a1.estimate());
    }
}
