//! CPU core topology and the sibling-first allocation heuristic.
//!
//! "It is intuitive to first assign a VR the cores that are 'close' to LVRM
//! … Thus, the dynamic approach first allocates the *sibling cores*, i.e.,
//! the cores that reside in the same CPU as the core on which LVRM is
//! running, followed by the *non-sibling cores*" (paper §3.2). And from
//! Experiment 2a: a core should be dedicated to at most one VRI, and letting
//! the kernel float processes ("default") costs throughput.

/// A physical CPU core.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CoreId(pub u16);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Core-affinity policies evaluated by Experiment 2a.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AffinityMode {
    /// Prefer cores in LVRM's own package, then spill to the other package
    /// (the paper's production heuristic).
    #[default]
    SiblingFirst,
    /// Deliberately allocate from the *other* package first (for the
    /// affinity experiment).
    NonSiblingFirst,
    /// Let the kernel place the VRI (no pinning); modeled as random
    /// placement with migration penalties in the testbed.
    Default,
    /// Pin the VRI onto LVRM's own core (two processes on one core — the
    /// pathological case in Fig. 4.8).
    Same,
}

impl AffinityMode {
    pub const ALL: [AffinityMode; 4] = [
        AffinityMode::SiblingFirst,
        AffinityMode::NonSiblingFirst,
        AffinityMode::Default,
        AffinityMode::Same,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AffinityMode::SiblingFirst => "sibling",
            AffinityMode::NonSiblingFirst => "non-sibling",
            AffinityMode::Default => "default",
            AffinityMode::Same => "same",
        }
    }
}

/// Physical layout: which cores live in which CPU package.
#[derive(Clone, Debug)]
pub struct CoreTopology {
    /// `packages[p]` lists the cores of package `p`.
    packages: Vec<Vec<CoreId>>,
}

impl CoreTopology {
    /// Build from explicit package membership.
    pub fn new(packages: Vec<Vec<CoreId>>) -> CoreTopology {
        assert!(!packages.is_empty(), "topology needs at least one package");
        assert!(packages.iter().all(|p| !p.is_empty()), "empty package in topology");
        CoreTopology { packages }
    }

    /// The paper's gateway: two quad-core Xeon E5530 packages, cores 0–3 in
    /// package 0 and 4–7 in package 1 (§4.1).
    pub fn dual_quad_xeon() -> CoreTopology {
        CoreTopology::new(vec![(0..4).map(CoreId).collect(), (4..8).map(CoreId).collect()])
    }

    /// A uniform single-package topology with `n` cores.
    pub fn single_package(n: u16) -> CoreTopology {
        assert!(n > 0);
        CoreTopology::new(vec![(0..n).map(CoreId).collect()])
    }

    /// A declared multi-socket machine: `sockets` packages of
    /// `cores_per_socket` cores each, numbered contiguously (socket 0 gets
    /// cores `0..cps`, socket 1 gets `cps..2*cps`, …). Generalizes
    /// [`CoreTopology::dual_quad_xeon`] so NUMA-aware placement can be
    /// exercised on shapes beyond the paper's gateway.
    pub fn multi_socket(sockets: u16, cores_per_socket: u16) -> CoreTopology {
        assert!(sockets > 0 && cores_per_socket > 0);
        CoreTopology::new(
            (0..sockets)
                .map(|s| (s * cores_per_socket..(s + 1) * cores_per_socket).map(CoreId).collect())
                .collect(),
        )
    }

    /// Total number of cores.
    pub fn num_cores(&self) -> usize {
        self.packages.iter().map(|p| p.len()).sum()
    }

    /// Package index of `core`, if present.
    pub fn package_of(&self, core: CoreId) -> Option<usize> {
        self.packages.iter().position(|p| p.contains(&core))
    }

    /// Whether two cores share a package.
    pub fn siblings(&self, a: CoreId, b: CoreId) -> bool {
        match (self.package_of(a), self.package_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// All cores, package by package.
    pub fn all_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.packages.iter().flatten().copied()
    }
}

/// Tracks which cores are free and hands them out according to an affinity
/// policy. LVRM's own core is reserved at construction (one core is always
/// "used by the LVRM process itself", §4.2 Exp. 2b).
#[derive(Clone, Debug)]
pub struct CoreMap {
    topology: CoreTopology,
    lvrm_core: CoreId,
    mode: AffinityMode,
    in_use: Vec<CoreId>,
}

impl CoreMap {
    pub fn new(topology: CoreTopology, lvrm_core: CoreId, mode: AffinityMode) -> CoreMap {
        assert!(
            topology.package_of(lvrm_core).is_some(),
            "LVRM home core {lvrm_core} not in topology"
        );
        CoreMap { topology, lvrm_core, mode, in_use: Vec::new() }
    }

    pub fn topology(&self) -> &CoreTopology {
        &self.topology
    }

    pub fn lvrm_core(&self) -> CoreId {
        self.lvrm_core
    }

    pub fn mode(&self) -> AffinityMode {
        self.mode
    }

    /// Cores currently assigned to VRIs.
    pub fn in_use(&self) -> &[CoreId] {
        &self.in_use
    }

    /// Cores still available for VRIs (never counts LVRM's core, except in
    /// `Same` mode where it is the only core ever handed out).
    pub fn available(&self) -> usize {
        match self.mode {
            AffinityMode::Same => usize::MAX, // over-subscribed by design
            _ => self.topology.num_cores() - 1 - self.in_use.len(),
        }
    }

    /// Candidate order per the affinity policy: the "best CPU" the paper's
    /// allocator pseudocode picks (Fig. 3.2).
    fn candidates(&self) -> Vec<CoreId> {
        let lvrm_pkg = self.topology.package_of(self.lvrm_core).expect("validated");
        let mut siblings: Vec<CoreId> = self
            .topology
            .all_cores()
            .filter(|c| *c != self.lvrm_core && self.topology.package_of(*c) == Some(lvrm_pkg))
            .collect();
        let mut others: Vec<CoreId> = self
            .topology
            .all_cores()
            .filter(|c| *c != self.lvrm_core && self.topology.package_of(*c) != Some(lvrm_pkg))
            .collect();
        siblings.sort_unstable();
        others.sort_unstable();
        match self.mode {
            AffinityMode::SiblingFirst => siblings.into_iter().chain(others).collect(),
            AffinityMode::NonSiblingFirst => others.into_iter().chain(siblings).collect(),
            // "Default" still picks distinct cores; the *placement* jitter is
            // the host's business (the testbed charges migration penalties).
            AffinityMode::Default => siblings.into_iter().chain(others).collect(),
            AffinityMode::Same => vec![self.lvrm_core],
        }
    }

    /// Allocate the best free core, or `None` when every candidate is taken.
    pub fn allocate(&mut self) -> Option<CoreId> {
        match self.mode {
            AffinityMode::Same => {
                // Every VRI lands on LVRM's core (deliberate contention).
                self.in_use.push(self.lvrm_core);
                Some(self.lvrm_core)
            }
            _ => {
                let core = self.candidates().into_iter().find(|c| !self.in_use.contains(c))?;
                self.in_use.push(core);
                Some(core)
            }
        }
    }

    /// Allocate the best free core *near* the given cores: packages already
    /// hosting one of `near` are preferred (most-populated first), so a VR's
    /// VRIs — and under the VLink fabric, the shared ring they all poll —
    /// stay on one NUMA node as long as it has room. Falls back to the
    /// plain affinity order when every nearby core is taken, and degenerates
    /// to [`CoreMap::allocate`] when `near` is empty.
    pub fn allocate_near(&mut self, near: &[CoreId]) -> Option<CoreId> {
        if near.is_empty() || self.mode == AffinityMode::Same {
            return self.allocate();
        }
        // Count how many of the anchor cores each package hosts.
        let mut weight = vec![0usize; self.topology.packages.len()];
        for c in near {
            if let Some(p) = self.topology.package_of(*c) {
                weight[p] += 1;
            }
        }
        let free: Vec<CoreId> =
            self.candidates().into_iter().filter(|c| !self.in_use.contains(c)).collect();
        let w = |c: CoreId| self.topology.package_of(c).map_or(0, |p| weight[p]);
        let best = free.iter().map(|c| w(*c)).max()?;
        // First candidate (affinity order) within the most-populated package.
        let core = free.into_iter().find(|c| w(*c) == best)?;
        self.in_use.push(core);
        Some(core)
    }

    /// Release a core back to the pool. Returns `false` if it was not
    /// allocated.
    pub fn release(&mut self, core: CoreId) -> bool {
        match self.in_use.iter().position(|c| *c == core) {
            Some(i) => {
                self.in_use.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// The allocated core a shrink should give back first: the most recently
    /// allocated (reverse of allocation preference, so sibling cores are the
    /// last to go).
    pub fn release_candidate(&self) -> Option<CoreId> {
        self.in_use.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon_map(mode: AffinityMode) -> CoreMap {
        CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), mode)
    }

    #[test]
    fn xeon_topology_shape() {
        let t = CoreTopology::dual_quad_xeon();
        assert_eq!(t.num_cores(), 8);
        assert!(t.siblings(CoreId(1), CoreId(3)));
        assert!(!t.siblings(CoreId(1), CoreId(5)));
        assert_eq!(t.package_of(CoreId(6)), Some(1));
        assert_eq!(t.package_of(CoreId(99)), None);
    }

    #[test]
    fn sibling_first_prefers_lvrm_package() {
        let mut m = xeon_map(AffinityMode::SiblingFirst);
        let order: Vec<u16> = (0..7).map(|_| m.allocate().unwrap().0).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5, 6, 7]);
        assert!(m.allocate().is_none(), "only 7 cores are allocatable");
    }

    #[test]
    fn non_sibling_first_prefers_other_package() {
        let mut m = xeon_map(AffinityMode::NonSiblingFirst);
        let order: Vec<u16> = (0..7).map(|_| m.allocate().unwrap().0).collect();
        assert_eq!(order, vec![4, 5, 6, 7, 1, 2, 3]);
    }

    #[test]
    fn same_mode_stacks_on_lvrm_core() {
        let mut m = xeon_map(AffinityMode::Same);
        assert_eq!(m.allocate(), Some(CoreId(0)));
        assert_eq!(m.allocate(), Some(CoreId(0)));
        assert_eq!(m.in_use().len(), 2);
    }

    #[test]
    fn release_recycles_cores() {
        let mut m = xeon_map(AffinityMode::SiblingFirst);
        let a = m.allocate().unwrap();
        let b = m.allocate().unwrap();
        assert_eq!(m.release_candidate(), Some(b));
        assert!(m.release(b));
        assert!(!m.release(b), "double release rejected");
        let c = m.allocate().unwrap();
        assert_eq!(c, b, "freed core is preferred again");
        assert_eq!(a, CoreId(1));
    }

    #[test]
    fn lvrm_core_never_handed_out_normally() {
        let mut m = xeon_map(AffinityMode::SiblingFirst);
        for _ in 0..7 {
            assert_ne!(m.allocate(), Some(CoreId(0)));
        }
    }

    #[test]
    #[should_panic(expected = "not in topology")]
    fn lvrm_core_must_exist() {
        let _ =
            CoreMap::new(CoreTopology::single_package(2), CoreId(9), AffinityMode::SiblingFirst);
    }

    #[test]
    fn multi_socket_shape() {
        let t = CoreTopology::multi_socket(4, 6);
        assert_eq!(t.num_cores(), 24);
        assert_eq!(t.package_of(CoreId(0)), Some(0));
        assert_eq!(t.package_of(CoreId(6)), Some(1));
        assert_eq!(t.package_of(CoreId(23)), Some(3));
        assert!(t.siblings(CoreId(12), CoreId(17)));
        assert!(!t.siblings(CoreId(11), CoreId(12)));
    }

    #[test]
    fn allocate_near_prefers_the_anchors_package() {
        // LVRM on socket 0; anchors on socket 2 should pull the allocation
        // there even though sibling-first would pick socket 0.
        let mut m =
            CoreMap::new(CoreTopology::multi_socket(4, 4), CoreId(0), AffinityMode::SiblingFirst);
        let got = m.allocate_near(&[CoreId(8), CoreId(9)]).unwrap();
        assert_eq!(m.topology().package_of(got), Some(2));
        // Within the package, candidate ordering still applies (the anchors
        // themselves are free in this synthetic setup, so the lowest wins).
        assert_eq!(got, CoreId(8));
    }

    #[test]
    fn allocate_near_skips_in_use_anchors() {
        let mut m =
            CoreMap::new(CoreTopology::multi_socket(2, 4), CoreId(0), AffinityMode::SiblingFirst);
        // Simulate the VR's first two VRIs already holding socket-1 cores.
        m.in_use.push(CoreId(4));
        m.in_use.push(CoreId(5));
        let got = m.allocate_near(&[CoreId(4), CoreId(5)]).unwrap();
        assert_eq!(m.topology().package_of(got), Some(1), "stays on the ring's home socket");
        assert_eq!(got, CoreId(6));
    }

    #[test]
    fn allocate_near_falls_back_when_home_socket_is_full() {
        let mut m =
            CoreMap::new(CoreTopology::multi_socket(2, 2), CoreId(0), AffinityMode::SiblingFirst);
        m.in_use.push(CoreId(2));
        m.in_use.push(CoreId(3));
        // Socket 1 (the anchor's home) is full; spill per affinity order.
        let got = m.allocate_near(&[CoreId(2), CoreId(3)]).unwrap();
        assert_eq!(got, CoreId(1));
    }

    #[test]
    fn allocate_near_with_no_anchors_is_plain_allocate() {
        let mut m = xeon_map(AffinityMode::SiblingFirst);
        assert_eq!(m.allocate_near(&[]), Some(CoreId(1)));
    }
}
