//! LVRM — the load-aware virtual router monitor (the paper's contribution).
//!
//! LVRM is a centralized user-space process that hosts multiple virtual
//! routers (VRs), spawning one **VR instance (VRI)** per allocated CPU core
//! and dispatching raw frames to them over lock-free IPC queues. Its job is
//! the paper's headline question: *how to dynamically assign CPU cores to
//! different virtual routers based on their data traffic loads?* (§1).
//!
//! The design is deliberately extensible along four dimensions, each a trait
//! with several shipped implementations:
//!
//! | Dimension        | Trait                  | Variants |
//! |------------------|------------------------|----------|
//! | socket adapter   | [`socket::SocketAdapter`] | raw socket (sim/loopback), PF_RING (sim/shared ring), main memory |
//! | core allocation  | [`alloc::CoreAllocator`]  | fixed, dynamic fixed-threshold, dynamic service-rate |
//! | load balancing   | [`balance::LoadBalancer`] | JSQ, round-robin, random; frame- or flow-based |
//! | load estimation  | [`estimate::LoadEstimator`] | EWMA queue length, EWMA inter-arrival |
//!
//! The monitor hierarchy mirrors Fig. 3.1: [`monitor::Lvrm`] owns one
//! VR-monitor state per VR; each VR owns a VRI monitor that spawns/kills
//! VRIs and balances frames among them; each VRI is reached through a
//! [`vri::VriAdapter`] which also estimates its load. The VRI side of the
//! wire is wrapped by [`vri::LvrmAdapter`], whose `from_lvrm`/`to_lvrm`
//! calls are the paper's `fromLVRM()`/`toLVRM()` API (§3.6).
//!
//! LVRM itself is host-agnostic: it runs identically inside the
//! discrete-event testbed (`lvrm-testbed`) and on real threads
//! (`lvrm-runtime`), via the [`host::VriHost`] and [`clock::Clock`]
//! abstractions.

pub mod adapter;
pub mod alloc;
pub mod balance;
pub mod checkpoint;
pub mod clock;
pub mod config;
pub mod estimate;
pub mod fault;
pub mod flowtable;
pub mod ha;
pub mod host;
pub mod monitor;
pub mod repl;
pub mod shard;
pub mod socket;
pub mod topology;
pub mod vri;

pub use adapter::{AdapterState, AdapterSupervisorConfig, SupervisedAdapter};
pub use alloc::{
    AllocDecision, CoreAllocator, DynamicFixedThreshold, DynamicServiceRate, FixedAllocator,
};
pub use balance::{BalanceCtx, Jsq, LoadBalancer, RandomBalancer, RoundRobin};
pub use checkpoint::{
    Checkpoint, CheckpointDelta, CheckpointError, FlowRecord, VrCheckpoint, VrDelta,
};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use config::{
    AllocatorKind, BalancerKind, DispatchMode, EstimatorKind, HaConfig, LvrmConfig, ShardConfig,
};
pub use fault::{
    jittered_backoff, randomized_fleet_storm, randomized_link_storm, splitmix64, AdapterFaultEvent,
    AdapterFaultKind, FaultEvent, FaultInjectable, FaultKind, FaultPlan, FaultyHost, FaultyLink,
    FaultySocket, LinkFaultKind, LinkFaultWindow,
};
pub use flowtable::{FlowTable, FlowTableStats};
pub use ha::{ChannelLink, HaMsg, HaNode, PeerLink, Role};
pub use host::{RecordingHost, VriHost, VriSpec};
pub use monitor::{Lvrm, LvrmStats};
pub use repl::{
    decode_batch, encode_batch, is_state_update, FlowBook, ReplicaLedger, StateUpdate,
    STATE_UPDATE_MAGIC,
};
pub use shard::{rendezvous_owner, FleetMsg, FleetNode, ShardEntry, ShardMap, SHARD_MAP_MAGIC};
pub use socket::{AdapterError, MemTraceAdapter, SendRejected, SocketAdapter, SocketKind};
pub use topology::{AffinityMode, CoreId, CoreMap, CoreTopology};
pub use vri::{LvrmAdapter, VriAdapter, VriHealth, LVRM_CTRL_ID};

/// Identifies a VR hosted by LVRM.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VrId(pub u32);

/// Identifies a VRI within the whole LVRM (unique across VRs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VriId(pub u32);

impl std::fmt::Display for VrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vr{}", self.0)
    }
}

impl std::fmt::Display for VriId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vri{}", self.0)
    }
}
