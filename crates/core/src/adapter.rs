//! Adapter supervision: the reliability layer over a [`SocketAdapter`].
//!
//! PR 2 made VRI crashes survivable; this module does the same for the
//! monitor's own I/O. A [`SupervisedAdapter`] owns a chain of adapters
//! (primary plus optional standbys) and runs a healthy/degraded/dead state
//! machine mirroring the VRI one (DESIGN.md §10):
//!
//! * **Healthy** — errors reset on every successful poll/send;
//! * **Degraded** — `error_threshold` consecutive transient faults; traffic
//!   still flows but the supervisor is watching;
//! * **Dead** — `dead_threshold` consecutive faults or one `Fatal`. The
//!   supervisor tries an immediate reopen; failing that it fails over to the
//!   next adapter in the chain, or schedules bounded exponential-backoff
//!   reopens from the monitor's 1 s tick.
//!
//! Egress never silently drops on a transient fault: refused frames park in
//! a retry queue with a deadline (`egress_retry_deadline_ns`) and are
//! re-sent from [`SupervisedAdapter::tick`]; only deadline expiry counts
//! them as `tx_drops`.
//!
//! The wrapper itself implements [`SocketAdapter`] and *absorbs* faults —
//! callers see `Ok(0)`/`Ok(())` while the supervisor recovers — so the
//! dataplane loop stays oblivious, exactly as the paper keeps "the polling
//! process of the socket adapter … transparent" to the monitor.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use lvrm_metrics::MetricsRegistry;
use lvrm_net::Frame;

use crate::fault::jittered_backoff;
use crate::socket::{AdapterError, SendRejected, SocketAdapter, SocketKind};

/// Per-process construction counter seeding each supervisor's jitter salt,
/// so two adapters built from the *same* config still reopen at different
/// instants (no thundering-herd reopens against a shared NIC/driver).
static NEXT_JITTER_SALT: AtomicU64 = AtomicU64::new(1);

/// Supervisor health classification of the active adapter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdapterState {
    Healthy,
    /// Accumulating consecutive faults; still serving.
    Degraded,
    /// Out of service: awaiting a backoff reopen (or already failed over).
    Dead,
}

impl AdapterState {
    pub fn name(self) -> &'static str {
        match self {
            AdapterState::Healthy => "healthy",
            AdapterState::Degraded => "degraded",
            AdapterState::Dead => "dead",
        }
    }

    /// Numeric encoding for the state gauge (0 healthy, 1 degraded, 2 dead).
    pub fn as_gauge(self) -> f64 {
        match self {
            AdapterState::Healthy => 0.0,
            AdapterState::Degraded => 1.0,
            AdapterState::Dead => 2.0,
        }
    }
}

/// Thresholds and deadlines for one supervised adapter, usually built from
/// [`crate::config::LvrmConfig::adapter_supervisor`].
#[derive(Clone, Copy, Debug)]
pub struct AdapterSupervisorConfig {
    /// Consecutive faults before the adapter is marked `Degraded`.
    pub error_threshold: u32,
    /// Consecutive faults before the adapter is declared `Dead`.
    pub dead_threshold: u32,
    /// Base reopen backoff after the first failed reopen attempt.
    pub reopen_backoff_ns: u64,
    /// Cap on the exponential reopen backoff.
    pub reopen_backoff_max_ns: u64,
    /// How long a refused egress frame may wait in the retry queue before it
    /// is finally counted dropped.
    pub egress_retry_deadline_ns: u64,
}

impl Default for AdapterSupervisorConfig {
    fn default() -> Self {
        AdapterSupervisorConfig {
            error_threshold: 3,
            dead_threshold: 8,
            reopen_backoff_ns: 100_000_000,        // 100 ms
            reopen_backoff_max_ns: 10_000_000_000, // 10 s
            egress_retry_deadline_ns: 50_000_000,  // 50 ms
        }
    }
}

/// A frame awaiting re-transmission, with its give-up instant.
struct RetryFrame {
    frame: Frame,
    deadline_ns: u64,
}

/// The supervised adapter chain. `chain[0]` is the primary; the rest are
/// standbys tried in order on failover (wrapping, so a recovered primary can
/// be failed back onto by a later fault).
pub struct SupervisedAdapter {
    chain: Vec<Box<dyn SocketAdapter>>,
    active: usize,
    state: AdapterState,
    consec_errors: u32,
    /// Failed reopen attempts since the adapter died (drives the backoff).
    reopen_attempts: u32,
    /// No reopen attempt before this instant.
    next_reopen_ns: u64,
    retry_q: VecDeque<RetryFrame>,
    /// Keys the ±25% reopen-backoff jitter; unique per instance by default.
    jitter_salt: u64,
    /// Latest timestamp seen by [`tick`](SupervisedAdapter::tick); the trait
    /// methods carry no clock, so deadlines are stamped from this.
    last_now_ns: u64,
    cfg: AdapterSupervisorConfig,
    /// Successful reopens of a dead adapter.
    pub reopens: u64,
    /// Switches to a standby adapter in the chain.
    pub failovers: u64,
    /// Refused egress frames later delivered from the retry queue.
    pub egress_retries: u64,
    /// Retry-queue frames that hit their deadline (the only egress loss).
    pub tx_drops: u64,
    /// Poll-side faults observed (WouldBlock excluded).
    pub rx_errors: u64,
}

impl SupervisedAdapter {
    pub fn new(primary: Box<dyn SocketAdapter>, cfg: AdapterSupervisorConfig) -> SupervisedAdapter {
        SupervisedAdapter::with_chain(vec![primary], cfg)
    }

    /// Build with standby adapters after the primary. Panics on an empty
    /// chain (there must be something to supervise).
    pub fn with_chain(
        chain: Vec<Box<dyn SocketAdapter>>,
        cfg: AdapterSupervisorConfig,
    ) -> SupervisedAdapter {
        assert!(!chain.is_empty(), "supervised chain needs at least one adapter");
        assert!(cfg.error_threshold >= 1 && cfg.dead_threshold >= cfg.error_threshold);
        SupervisedAdapter {
            chain,
            active: 0,
            state: AdapterState::Healthy,
            consec_errors: 0,
            reopen_attempts: 0,
            next_reopen_ns: 0,
            retry_q: VecDeque::new(),
            jitter_salt: NEXT_JITTER_SALT.fetch_add(1, Ordering::Relaxed),
            last_now_ns: 0,
            cfg,
            reopens: 0,
            failovers: 0,
            egress_retries: 0,
            tx_drops: 0,
            rx_errors: 0,
        }
    }

    pub fn state(&self) -> AdapterState {
        self.state
    }

    /// Index of the adapter currently serving traffic.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// Adapters in the chain (primary + standbys).
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// Frames parked in the egress retry queue.
    pub fn retry_pending(&self) -> usize {
        self.retry_q.len()
    }

    /// Pin the jitter salt (tests; production code keeps the per-instance
    /// default so same-config supervisors stay de-phased).
    pub fn set_jitter_salt(&mut self, salt: u64) {
        self.jitter_salt = salt;
    }

    fn backoff_ns(&self) -> u64 {
        let doublings = self.reopen_attempts.saturating_sub(1).min(20);
        let clamped = self
            .cfg
            .reopen_backoff_ns
            .saturating_mul(1u64 << doublings)
            .min(self.cfg.reopen_backoff_max_ns);
        // Jitter after the cap so even saturated backoffs stay de-phased.
        jittered_backoff(clamped, self.jitter_salt, self.reopen_attempts as u64)
    }

    fn note_ok(&mut self) {
        self.consec_errors = 0;
        if self.state == AdapterState::Degraded {
            self.state = AdapterState::Healthy;
        }
    }

    /// Record a real fault (never `WouldBlock`) and run the state machine.
    fn note_fault(&mut self, error: &AdapterError) {
        debug_assert!(!error.is_would_block());
        match error {
            AdapterError::Fatal => self.declare_dead(),
            _ => {
                self.consec_errors = self.consec_errors.saturating_add(1);
                if self.consec_errors >= self.cfg.dead_threshold {
                    self.declare_dead();
                } else if self.consec_errors >= self.cfg.error_threshold {
                    self.state = AdapterState::Degraded;
                }
            }
        }
    }

    /// The active adapter is gone: reopen immediately if possible, else fail
    /// over to a standby, else schedule backoff reopens.
    fn declare_dead(&mut self) {
        self.state = AdapterState::Dead;
        self.consec_errors = 0;
        if self.chain[self.active].reopen().is_ok() {
            self.reopens += 1;
            self.recovered();
            return;
        }
        if self.chain.len() > 1 {
            self.active = (self.active + 1) % self.chain.len();
            self.failovers += 1;
            self.recovered();
            return;
        }
        self.reopen_attempts = 1; // the immediate attempt above
        self.next_reopen_ns = self.last_now_ns.saturating_add(self.backoff_ns());
    }

    fn recovered(&mut self) {
        self.state = AdapterState::Healthy;
        self.consec_errors = 0;
        self.reopen_attempts = 0;
    }

    /// Drive time-based recovery from the monitor's 1 s tick (or any loop
    /// cadence): update the supervisor clock, attempt a due reopen, and
    /// flush the egress retry queue. Returns frames delivered from retries.
    pub fn tick(&mut self, now_ns: u64) -> usize {
        self.last_now_ns = self.last_now_ns.max(now_ns);
        for a in &mut self.chain {
            a.advance(now_ns);
        }
        if self.state == AdapterState::Dead && now_ns >= self.next_reopen_ns {
            if self.chain[self.active].reopen().is_ok() {
                self.reopens += 1;
                self.recovered();
            } else {
                self.reopen_attempts = self.reopen_attempts.saturating_add(1);
                self.next_reopen_ns = now_ns.saturating_add(self.backoff_ns());
            }
        }
        self.flush_retries(now_ns)
    }

    fn flush_retries(&mut self, now_ns: u64) -> usize {
        let mut delivered = 0;
        while let Some(head) = self.retry_q.front() {
            if now_ns >= head.deadline_ns {
                // Deadline passed: the frame is finally, visibly, dropped.
                self.retry_q.pop_front();
                self.tx_drops += 1;
                continue;
            }
            if self.state == AdapterState::Dead {
                break; // nowhere to send; keep waiting for reopen/failover
            }
            let head = self.retry_q.pop_front().expect("front checked");
            match self.chain[self.active].send(head.frame) {
                Ok(()) => {
                    self.egress_retries += 1;
                    delivered += 1;
                    self.note_ok();
                }
                Err(SendRejected { frame, error }) => {
                    if !error.is_would_block() {
                        self.note_fault(&error);
                    }
                    self.retry_q.push_front(RetryFrame { frame, deadline_ns: head.deadline_ns });
                    break;
                }
            }
        }
        delivered
    }

    /// Publish the supervisor's counters and state gauge into `reg` under
    /// the monitor's metric names (registry handles dedup by name, so these
    /// land in the same families [`crate::monitor::Lvrm`] registers).
    pub fn publish(&self, reg: &MetricsRegistry) {
        reg.counter(
            "lvrm_adapter_reopens_total",
            "Successful reopens of a dead socket adapter.",
            &[],
        )
        .store(self.reopens);
        reg.counter("lvrm_adapter_failovers_total", "Failovers to a standby socket adapter.", &[])
            .store(self.failovers);
        reg.counter(
            "lvrm_egress_retries_total",
            "Refused egress frames later delivered from the retry queue.",
            &[],
        )
        .store(self.egress_retries);
        reg.gauge(
            "lvrm_adapter_state",
            "Supervised adapter state (0 healthy, 1 degraded, 2 dead).",
            &[],
        )
        .set(self.state.as_gauge());
        reg.gauge(
            "lvrm_adapter_retry_pending",
            "Egress frames parked in the supervisor's retry queue.",
            &[],
        )
        .set(self.retry_q.len() as f64);
    }
}

impl SocketAdapter for SupervisedAdapter {
    fn poll(&mut self) -> Result<Frame, AdapterError> {
        if self.state == AdapterState::Dead {
            return Err(AdapterError::WouldBlock);
        }
        match self.chain[self.active].poll() {
            Ok(f) => {
                self.note_ok();
                Ok(f)
            }
            Err(AdapterError::WouldBlock) => Err(AdapterError::WouldBlock),
            Err(e) => {
                self.rx_errors += 1;
                self.note_fault(&e);
                // The fault is absorbed: callers see idle while we recover.
                Err(AdapterError::WouldBlock)
            }
        }
    }

    fn poll_batch(&mut self, out: &mut Vec<Frame>, budget: usize) -> Result<usize, AdapterError> {
        if self.state == AdapterState::Dead {
            return Ok(0);
        }
        match self.chain[self.active].poll_batch(out, budget) {
            Ok(n) => {
                if n > 0 {
                    self.note_ok();
                }
                Ok(n)
            }
            Err(AdapterError::WouldBlock) => Ok(0),
            Err(e) => {
                self.rx_errors += 1;
                self.note_fault(&e);
                Ok(0)
            }
        }
    }

    fn send(&mut self, frame: Frame) -> Result<(), SendRejected> {
        if self.state == AdapterState::Dead {
            self.retry_q.push_back(RetryFrame {
                frame,
                deadline_ns: self.last_now_ns.saturating_add(self.cfg.egress_retry_deadline_ns),
            });
            return Ok(());
        }
        match self.chain[self.active].send(frame) {
            Ok(()) => {
                self.note_ok();
                Ok(())
            }
            Err(SendRejected { frame, error }) => {
                if !error.is_would_block() {
                    self.note_fault(&error);
                }
                // Transient refusal or death mid-send: park for retry either
                // way; the deadline bounds the loss if recovery never comes.
                self.retry_q.push_back(RetryFrame {
                    frame,
                    deadline_ns: self.last_now_ns.saturating_add(self.cfg.egress_retry_deadline_ns),
                });
                Ok(())
            }
        }
    }

    fn send_batch(&mut self, frames: &mut Vec<Frame>) -> Result<usize, AdapterError> {
        let n = frames.len();
        for frame in frames.drain(..) {
            let _ = self.send(frame); // absorbs; refused frames go to retry_q
        }
        Ok(n)
    }

    fn reopen(&mut self) -> Result<(), AdapterError> {
        self.chain[self.active].reopen()
    }

    fn advance(&mut self, now_ns: u64) {
        self.tick(now_ns);
    }

    fn kind(&self) -> SocketKind {
        self.chain[self.active].kind()
    }

    fn rx_count(&self) -> u64 {
        self.chain.iter().map(|a| a.rx_count()).sum()
    }

    fn tx_count(&self) -> u64 {
        self.chain.iter().map(|a| a.tx_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultySocket;
    use crate::socket::MemTraceAdapter;
    use lvrm_net::{Trace, TraceSpec};

    fn mem(frames: u64) -> MemTraceAdapter {
        MemTraceAdapter::new(Trace::generate(&TraceSpec::new(84, 4)), frames)
    }

    #[test]
    fn healthy_chain_passes_traffic_through() {
        let mut sup = SupervisedAdapter::new(Box::new(mem(5)), Default::default());
        let mut out = Vec::new();
        assert_eq!(sup.poll_batch(&mut out, 10).unwrap(), 5);
        assert_eq!(sup.rx_count(), 5);
        assert_eq!(sup.state(), AdapterState::Healthy);
        assert_eq!(sup.send_batch(&mut out).unwrap(), 5);
        assert_eq!(sup.tx_count(), 5);
        assert_eq!(sup.tx_drops, 0);
    }

    #[test]
    fn transient_faults_degrade_then_kill_then_reopen() {
        // MemTrace reopens Ok, so the wrapped FaultySocket models a NIC that
        // recovers on reopen; a long error burst walks the state machine.
        let inner = FaultySocket::new(mem(100)).error_burst(0, 50);
        let cfg =
            AdapterSupervisorConfig { error_threshold: 2, dead_threshold: 4, ..Default::default() };
        let mut sup = SupervisedAdapter::new(Box::new(inner), cfg);
        assert!(sup.poll().is_err(), "burst frame absorbed as idle");
        assert!(sup.poll().is_err());
        assert_eq!(sup.state(), AdapterState::Degraded, "error_threshold crossed");
        let _ = sup.poll();
        let _ = sup.poll();
        // dead_threshold crossed -> declare_dead -> immediate reopen succeeds
        // (FaultySocket::reopen clears nothing here, but MemTrace's Ok wins).
        assert_eq!(sup.state(), AdapterState::Healthy, "immediate reopen revived it");
        assert_eq!(sup.reopens, 1);
        assert!(sup.rx_errors >= 4);
    }

    #[test]
    fn fatal_with_standby_fails_over() {
        let primary = FaultySocket::new(mem(10)).crashed_from_start();
        let standby = mem(7);
        let mut sup = SupervisedAdapter::with_chain(
            vec![Box::new(primary), Box::new(standby)],
            Default::default(),
        );
        let mut out = Vec::new();
        // First poll hits Fatal; reopen clears the crash flag... so to force
        // failover the fault must persist across reopen.
        let n = sup.poll_batch(&mut out, 4).unwrap();
        assert_eq!(n, 0, "fatal absorbed");
        assert_eq!(sup.state(), AdapterState::Healthy);
        assert!(sup.failovers == 1 || sup.reopens == 1);
        // Either way the chain serves again.
        let n2 = sup.poll_batch(&mut out, 4).unwrap();
        assert_eq!(n2, 4);
    }

    #[test]
    fn dead_without_standby_backs_off_exponentially() {
        /// An adapter that is permanently fatal and never reopens.
        struct Brick;
        impl SocketAdapter for Brick {
            fn poll(&mut self) -> Result<Frame, AdapterError> {
                Err(AdapterError::Fatal)
            }
            fn send(&mut self, frame: Frame) -> Result<(), SendRejected> {
                Err(SendRejected { frame, error: AdapterError::Fatal })
            }
            fn kind(&self) -> SocketKind {
                SocketKind::RawSocket
            }
            fn rx_count(&self) -> u64 {
                0
            }
            fn tx_count(&self) -> u64 {
                0
            }
        }
        let cfg = AdapterSupervisorConfig {
            reopen_backoff_ns: 100,
            reopen_backoff_max_ns: 400,
            ..Default::default()
        };
        let band = |delta: u64, base: u64| {
            assert!(
                delta >= base - base / 4 && delta <= base + base / 4,
                "backoff {delta} outside ±25% of {base}"
            );
        };
        let mut sup = SupervisedAdapter::new(Box::new(Brick), cfg);
        sup.set_jitter_salt(42);
        sup.tick(0);
        assert!(sup.poll().is_err());
        assert_eq!(sup.state(), AdapterState::Dead);
        let first = sup.next_reopen_ns;
        band(first, 100);
        sup.tick(first);
        assert_eq!(sup.state(), AdapterState::Dead);
        band(sup.next_reopen_ns - first, 200);
        sup.tick(sup.next_reopen_ns);
        sup.tick(sup.next_reopen_ns);
        // Capped at reopen_backoff_max_ns (jitter still applies at the cap).
        let before = sup.next_reopen_ns;
        sup.tick(before);
        band(sup.next_reopen_ns - before, 400);
        assert_eq!(sup.reopens, 0, "a brick never reopens");
        // Determinism: an identically salted supervisor reproduces the run.
        let cfg2 = AdapterSupervisorConfig {
            reopen_backoff_ns: 100,
            reopen_backoff_max_ns: 400,
            ..Default::default()
        };
        let mut twin = SupervisedAdapter::new(Box::new(Brick), cfg2);
        twin.set_jitter_salt(42);
        twin.tick(0);
        assert!(twin.poll().is_err());
        assert_eq!(twin.next_reopen_ns, first, "same salt, same schedule");
    }

    #[test]
    fn same_config_adapters_do_not_share_reopen_instants() {
        struct Brick;
        impl SocketAdapter for Brick {
            fn poll(&mut self) -> Result<Frame, AdapterError> {
                Err(AdapterError::Fatal)
            }
            fn send(&mut self, frame: Frame) -> Result<(), SendRejected> {
                Err(SendRejected { frame, error: AdapterError::Fatal })
            }
            fn kind(&self) -> SocketKind {
                SocketKind::RawSocket
            }
            fn rx_count(&self) -> u64 {
                0
            }
            fn tx_count(&self) -> u64 {
                0
            }
        }
        let cfg = AdapterSupervisorConfig {
            reopen_backoff_ns: 1_000_000,
            reopen_backoff_max_ns: 64_000_000,
            ..Default::default()
        };
        // Identical configs, default (per-instance) salts: the schedules
        // must diverge or every adapter on a dead NIC retries in lockstep.
        let schedule = |sup: &mut SupervisedAdapter| {
            sup.tick(0);
            assert!(sup.poll().is_err());
            let mut s = vec![sup.next_reopen_ns];
            for _ in 0..5 {
                sup.tick(sup.next_reopen_ns);
                s.push(sup.next_reopen_ns);
            }
            s
        };
        let mut a = SupervisedAdapter::new(Box::new(Brick), cfg);
        let mut b = SupervisedAdapter::new(Box::new(Brick), cfg);
        assert_ne!(schedule(&mut a), schedule(&mut b), "jitter must de-phase equal configs");
    }

    #[test]
    fn refused_egress_retries_until_deadline() {
        let inner = FaultySocket::new(mem(10)).send_fail(0, 2);
        let cfg = AdapterSupervisorConfig { egress_retry_deadline_ns: 1_000, ..Default::default() };
        let mut sup = SupervisedAdapter::new(Box::new(inner), cfg);
        sup.tick(0);
        let mut frames = Vec::new();
        sup.poll_batch(&mut frames, 3).unwrap();
        assert_eq!(sup.send_batch(&mut frames).unwrap(), 3, "supervisor absorbs refusals");
        // send indices 0 and 1 were refused and parked; index 2 went out.
        assert_eq!(sup.retry_pending(), 2);
        assert_eq!(sup.tx_count(), 1);
        // Before the deadline, the retry flush delivers them.
        let delivered = sup.tick(500);
        assert_eq!(delivered, 2);
        assert_eq!(sup.egress_retries, 2);
        assert_eq!(sup.tx_count(), 3);
        assert_eq!(sup.tx_drops, 0, "no frame was lost to the transient TX fault");
    }

    #[test]
    fn retry_deadline_expiry_is_the_only_loss() {
        let inner = FaultySocket::new(mem(10)).send_fail(0, u64::MAX);
        let cfg = AdapterSupervisorConfig { egress_retry_deadline_ns: 1_000, ..Default::default() };
        let mut sup = SupervisedAdapter::new(Box::new(inner), cfg);
        sup.tick(0);
        let mut frames = Vec::new();
        sup.poll_batch(&mut frames, 2).unwrap();
        sup.send_batch(&mut frames).unwrap();
        assert_eq!(sup.retry_pending(), 2);
        sup.tick(500); // still refusing, still parked
        assert_eq!(sup.retry_pending(), 2);
        sup.tick(2_000); // past the deadline
        assert_eq!(sup.retry_pending(), 0);
        assert_eq!(sup.tx_drops, 2, "deadline expiry counts the loss visibly");
    }

    #[test]
    fn publish_exports_counters() {
        let reg = MetricsRegistry::new();
        let mut sup = SupervisedAdapter::new(Box::new(mem(1)), Default::default());
        sup.reopens = 3;
        sup.failovers = 1;
        sup.egress_retries = 7;
        sup.publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lvrm_adapter_reopens_total", &[]), Some(3));
        assert_eq!(snap.counter("lvrm_adapter_failovers_total", &[]), Some(1));
        assert_eq!(snap.counter("lvrm_egress_retries_total", &[]), Some(7));
        assert_eq!(snap.gauge("lvrm_adapter_state", &[]), Some(0.0));
    }
}
