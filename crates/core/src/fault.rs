//! Deterministic fault injection for chaos-testing the supervisor.
//!
//! Failures are described ahead of time by a [`FaultPlan`]: a list of
//! `(timestamp, fault)` pairs, either hand-written or generated from a seed.
//! Nothing here consults wall-clock time or an OS entropy source — plans are
//! replayed against a [`crate::clock::ManualClock`] (or any monotonic
//! timestamp stream), so every chaos run is exactly reproducible from its
//! seed.
//!
//! [`FaultyHost`] wraps any [`VriHost`] that knows how to hurt itself (the
//! [`FaultInjectable`] verbs) and fires due faults as simulated time
//! advances. Faults target VRIs by **spawn order** rather than id, so a plan
//! written before the run ("crash the second instance ever started") stays
//! meaningful across allocator decisions and respawns.
//!
//! [`FaultySocket`] wraps a [`SocketAdapter`] and models ingress error
//! bursts: windows of arriving frames, addressed by frame index (again —
//! deterministic regardless of timing), that are consumed from the inner
//! adapter but delivered to nobody, as a NIC with a corrupted ring would.

use lvrm_ipc::VriEndpoint;
use lvrm_net::Frame;
use lvrm_router::VirtualRouter;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::host::{RecordingHost, VriHost, VriSpec};
use crate::socket::{SocketAdapter, SocketKind};
use crate::{VrId, VriId};

/// One kind of injected failure. VRIs are addressed by spawn order (the
/// `nth_spawn`-th `spawn_vri` call the wrapped host ever saw, 0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The VRI process dies: its endpoint detaches, frames queued toward it
    /// stay in the queues for the supervisor to reap.
    Crash { nth_spawn: usize },
    /// The VRI wedges: it stops servicing `from_lvrm`, so its heartbeats
    /// stop, but its endpoint stays attached.
    Stall { nth_spawn: usize },
    /// Un-wedge a stalled VRI.
    Resume { nth_spawn: usize },
    /// Toggle control-queue loss: the VRI keeps forwarding frames but its
    /// proofs of life no longer reach the monitor.
    CtrlLoss { nth_spawn: usize, on: bool },
}

/// A fault scheduled at a point in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub at_ns: u64,
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule an arbitrary fault.
    pub fn push(mut self, at_ns: u64, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at_ns, kind });
        self
    }

    /// Crash the `nth`-spawned VRI at `at_ns`.
    pub fn crash_at(self, at_ns: u64, nth: usize) -> FaultPlan {
        self.push(at_ns, FaultKind::Crash { nth_spawn: nth })
    }

    /// Stall the `nth`-spawned VRI at `at_ns`.
    pub fn stall_at(self, at_ns: u64, nth: usize) -> FaultPlan {
        self.push(at_ns, FaultKind::Stall { nth_spawn: nth })
    }

    /// Resume the `nth`-spawned VRI at `at_ns`.
    pub fn resume_at(self, at_ns: u64, nth: usize) -> FaultPlan {
        self.push(at_ns, FaultKind::Resume { nth_spawn: nth })
    }

    /// Toggle control-queue loss for the `nth`-spawned VRI at `at_ns`.
    pub fn ctrl_loss_at(self, at_ns: u64, nth: usize, on: bool) -> FaultPlan {
        self.push(at_ns, FaultKind::CtrlLoss { nth_spawn: nth, on })
    }

    /// Generate `count` faults uniformly over `(0, horizon_ns]` targeting
    /// spawn indices below `max_spawns`, all from `seed`. The same seed
    /// always yields the same plan.
    pub fn randomized(seed: u64, horizon_ns: u64, count: usize, max_spawns: usize) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let at_ns = 1 + rng.gen_range(0..horizon_ns.max(1));
            let nth = rng.gen_range(0..max_spawns.max(1));
            let kind = match rng.gen_range(0..4u8) {
                0 => FaultKind::Crash { nth_spawn: nth },
                1 => FaultKind::Stall { nth_spawn: nth },
                2 => FaultKind::Resume { nth_spawn: nth },
                _ => FaultKind::CtrlLoss { nth_spawn: nth, on: rng.gen_range(0..2u8) == 1 },
            };
            plan = plan.push(at_ns, kind);
        }
        plan
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The self-harm verbs a host must offer for [`FaultyHost`] to drive it.
pub trait FaultInjectable {
    /// Kill the VRI's execution vehicle abruptly: endpoint detaches,
    /// in-flight frames stay queued for reaping. Not monitor work — the
    /// supervisor discovers it via the detached endpoint.
    fn inject_crash(&mut self, vri: VriId);

    /// Wedge (`on = true`) or un-wedge the VRI's service loop.
    fn inject_stall(&mut self, vri: VriId, on: bool);

    /// Start or stop dropping the VRI's upstream liveness traffic.
    fn inject_ctrl_loss(&mut self, vri: VriId, on: bool);
}

impl FaultInjectable for RecordingHost {
    fn inject_crash(&mut self, vri: VriId) {
        self.crash_vri(vri);
    }

    fn inject_stall(&mut self, vri: VriId, on: bool) {
        if on {
            self.stalled.insert(vri);
        } else {
            self.stalled.remove(&vri);
        }
    }

    fn inject_ctrl_loss(&mut self, vri: VriId, on: bool) {
        if on {
            self.ctrl_mute.insert(vri);
        } else {
            self.ctrl_mute.remove(&vri);
        }
    }
}

/// A [`VriHost`] wrapper that fires a [`FaultPlan`] as time advances.
///
/// Spawns pass through and are recorded in order, so plan entries addressed
/// by spawn index resolve to concrete [`VriId`]s at fire time. Call
/// [`apply`] with the current timestamp from the driving loop; due events
/// fire in schedule order. Events targeting a spawn index that has not
/// happened yet are dropped (counted in `skipped`).
///
/// [`apply`]: FaultyHost::apply
pub struct FaultyHost<H> {
    pub inner: H,
    plan: Vec<FaultEvent>,
    cursor: usize,
    /// VriId of every spawn the wrapped host ever saw, in order.
    pub spawn_order: Vec<VriId>,
    /// Faults fired so far.
    pub injected: u64,
    /// Plan entries dropped because their target never spawned.
    pub skipped: u64,
}

impl<H> FaultyHost<H> {
    pub fn new(inner: H, plan: FaultPlan) -> FaultyHost<H> {
        let mut events = plan.events;
        events.sort_by_key(|e| e.at_ns);
        FaultyHost {
            inner,
            plan: events,
            cursor: 0,
            spawn_order: Vec::new(),
            injected: 0,
            skipped: 0,
        }
    }

    fn target(&self, nth: usize) -> Option<VriId> {
        self.spawn_order.get(nth).copied()
    }
}

impl<H: VriHost + FaultInjectable> FaultyHost<H> {
    /// Fire every event due at or before `now_ns`. Returns how many fired.
    pub fn apply(&mut self, now_ns: u64) -> usize {
        let mut fired = 0;
        while self.cursor < self.plan.len() && self.plan[self.cursor].at_ns <= now_ns {
            let ev = self.plan[self.cursor];
            self.cursor += 1;
            let nth = match ev.kind {
                FaultKind::Crash { nth_spawn }
                | FaultKind::Stall { nth_spawn }
                | FaultKind::Resume { nth_spawn }
                | FaultKind::CtrlLoss { nth_spawn, .. } => nth_spawn,
            };
            let Some(vri) = self.target(nth) else {
                self.skipped += 1;
                continue;
            };
            match ev.kind {
                FaultKind::Crash { .. } => self.inner.inject_crash(vri),
                FaultKind::Stall { .. } => self.inner.inject_stall(vri, true),
                FaultKind::Resume { .. } => self.inner.inject_stall(vri, false),
                FaultKind::CtrlLoss { on, .. } => self.inner.inject_ctrl_loss(vri, on),
            }
            self.injected += 1;
            fired += 1;
        }
        fired
    }
}

impl<H: VriHost> VriHost for FaultyHost<H> {
    fn spawn_vri(
        &mut self,
        spec: VriSpec,
        endpoint: VriEndpoint<Frame>,
        router: Box<dyn VirtualRouter>,
    ) {
        self.spawn_order.push(spec.vri);
        self.inner.spawn_vri(spec, endpoint, router);
    }

    fn kill_vri(&mut self, vr: VrId, vri: VriId) {
        self.inner.kill_vri(vr, vri);
    }

    fn reap_endpoint(&mut self, vri: VriId) -> Option<VriEndpoint<Frame>> {
        self.inner.reap_endpoint(vri)
    }
}

/// A [`SocketAdapter`] wrapper modeling ingress error bursts: frames whose
/// arrival index falls inside a configured window are consumed from the
/// inner adapter but never delivered (a NIC signalling RX errors). Windows
/// are addressed by frame index, not time, so a burst hits the same frames
/// on every run regardless of poll cadence.
pub struct FaultySocket<S> {
    pub inner: S,
    bursts: Vec<(u64, u64)>,
    seen: u64,
    /// Frames eaten by error bursts.
    pub rx_errors: u64,
}

impl<S> FaultySocket<S> {
    pub fn new(inner: S) -> FaultySocket<S> {
        FaultySocket { inner, bursts: Vec::new(), seen: 0, rx_errors: 0 }
    }

    /// Drop `len` frames starting at arrival index `start` (0-based).
    pub fn error_burst(mut self, start: u64, len: u64) -> FaultySocket<S> {
        self.bursts.push((start, len));
        self
    }

    fn is_error(&self, idx: u64) -> bool {
        self.bursts.iter().any(|&(s, l)| idx >= s && idx < s + l)
    }
}

impl<S: SocketAdapter> SocketAdapter for FaultySocket<S> {
    fn poll(&mut self) -> Option<Frame> {
        loop {
            let f = self.inner.poll()?;
            let idx = self.seen;
            self.seen += 1;
            if self.is_error(idx) {
                self.rx_errors += 1;
                continue;
            }
            return Some(f);
        }
    }

    fn send(&mut self, frame: Frame) {
        self.inner.send(frame);
    }

    fn send_batch(&mut self, frames: &mut Vec<Frame>) {
        self.inner.send_batch(frames);
    }

    fn kind(&self) -> SocketKind {
        self.inner.kind()
    }

    /// Frames actually delivered to LVRM (errored frames excluded).
    fn rx_count(&self) -> u64 {
        self.inner.rx_count() - self.rx_errors
    }

    fn tx_count(&self) -> u64 {
        self.inner.tx_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::MemTraceAdapter;
    use crate::topology::CoreId;
    use lvrm_ipc::QueueKind;
    use lvrm_net::{Trace, TraceSpec};
    use lvrm_router::{FastVr, RouteTable};

    fn spawn(host: &mut FaultyHost<RecordingHost>, vri: u32) {
        let (_chans, endpoint) =
            lvrm_ipc::channels::vri_channels::<Frame>(QueueKind::Lamport, 8, 4);
        host.spawn_vri(
            VriSpec { vr: VrId(0), vri: VriId(vri), core: CoreId(vri as u16) },
            endpoint,
            Box::new(FastVr::new("t", RouteTable::new())),
        );
    }

    #[test]
    fn plan_fires_in_time_order_against_spawn_order() {
        let plan = FaultPlan::new().stall_at(200, 1).crash_at(100, 0);
        let mut host = FaultyHost::new(RecordingHost::default(), plan);
        spawn(&mut host, 10);
        spawn(&mut host, 11);
        assert_eq!(host.apply(50), 0, "nothing due yet");
        assert_eq!(host.apply(150), 1, "crash fires");
        assert!(host.inner.endpoints.iter().all(|(id, _, _)| *id != VriId(10)));
        assert_eq!(host.apply(300), 1, "stall fires");
        assert!(host.inner.stalled.contains(&VriId(11)));
        assert_eq!(host.injected, 2);
    }

    #[test]
    fn faults_for_unspawned_targets_are_skipped() {
        let plan = FaultPlan::new().crash_at(10, 7);
        let mut host = FaultyHost::new(RecordingHost::default(), plan);
        spawn(&mut host, 1);
        assert_eq!(host.apply(100), 0);
        assert_eq!(host.skipped, 1);
    }

    #[test]
    fn randomized_plans_are_reproducible() {
        let a = FaultPlan::randomized(42, 1_000_000, 16, 4);
        let b = FaultPlan::randomized(42, 1_000_000, 16, 4);
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::randomized(43, 1_000_000, 16, 4);
        assert_ne!(a.events(), c.events(), "different seed, different plan");
    }

    #[test]
    fn faulty_socket_eats_exactly_the_burst() {
        let trace = Trace::generate(&TraceSpec::new(84, 4));
        let inner = MemTraceAdapter::new(trace, 10);
        let mut sock = FaultySocket::new(inner).error_burst(2, 3);
        let mut got = 0;
        while sock.poll().is_some() {
            got += 1;
        }
        assert_eq!(got, 7, "indices 2..5 errored");
        assert_eq!(sock.rx_errors, 3);
        assert_eq!(sock.rx_count(), 7);
    }
}
