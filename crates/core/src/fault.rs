//! Deterministic fault injection for chaos-testing the supervisor.
//!
//! Failures are described ahead of time by a [`FaultPlan`]: a list of
//! `(timestamp, fault)` pairs, either hand-written or generated from a seed.
//! Nothing here consults wall-clock time or an OS entropy source — plans are
//! replayed against a [`crate::clock::ManualClock`] (or any monotonic
//! timestamp stream), so every chaos run is exactly reproducible from its
//! seed.
//!
//! [`FaultyHost`] wraps any [`VriHost`] that knows how to hurt itself (the
//! [`FaultInjectable`] verbs) and fires due faults as simulated time
//! advances. Faults target VRIs by **spawn order** rather than id, so a plan
//! written before the run ("crash the second instance ever started") stays
//! meaningful across allocator decisions and respawns.
//!
//! [`FaultySocket`] wraps a [`SocketAdapter`] and models NIC misbehavior:
//! ingress error bursts (windows of arriving frames, addressed by frame
//! index, that surface as [`AdapterError::Transient`]), refused sends
//! (addressed by send-attempt index, the frame handed back intact), and
//! time-addressed crash/stall events from the plan's adapter track. A
//! crashed or stalled socket recovers on [`SocketAdapter::reopen`] — the
//! model of restarting a wedged NIC — which is exactly the hook the
//! [`crate::adapter::SupervisedAdapter`] drives.

use std::io;

use lvrm_ipc::VriEndpoint;
use lvrm_net::Frame;
use lvrm_router::VirtualRouter;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ha::PeerLink;
use crate::host::{RecordingHost, VriHost, VriSpec};
use crate::socket::{AdapterError, SendRejected, SocketAdapter, SocketKind};
use crate::{VrId, VriId};

/// One kind of injected failure. VRIs are addressed by spawn order (the
/// `nth_spawn`-th `spawn_vri` call the wrapped host ever saw, 0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The VRI process dies: its endpoint detaches, frames queued toward it
    /// stay in the queues for the supervisor to reap.
    Crash { nth_spawn: usize },
    /// The VRI wedges: it stops servicing `from_lvrm`, so its heartbeats
    /// stop, but its endpoint stays attached.
    Stall { nth_spawn: usize },
    /// Un-wedge a stalled VRI.
    Resume { nth_spawn: usize },
    /// Toggle control-queue loss: the VRI keeps forwarding frames but its
    /// proofs of life no longer reach the monitor.
    CtrlLoss { nth_spawn: usize, on: bool },
}

/// A fault scheduled at a point in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub at_ns: u64,
    pub kind: FaultKind,
}

/// One kind of injected *adapter* failure, scheduled by simulated time on
/// the plan's adapter track and fired by [`FaultySocket::apply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdapterFaultKind {
    /// The NIC dies outright: every poll/send fails [`AdapterError::Fatal`]
    /// until the adapter is reopened.
    Crash,
    /// The NIC wedges: operations fail [`AdapterError::Stalled`] until
    /// resumed or reopened.
    Stall,
    /// Un-wedge a stalled adapter (a crash still needs a reopen).
    Resume,
    /// Start an RX error burst: the next `len` arriving frames surface as
    /// [`AdapterError::Transient`] instead of being delivered.
    ErrorBurst { len: u64 },
}

/// An adapter fault scheduled at a point in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdapterFaultEvent {
    pub at_ns: u64,
    pub kind: AdapterFaultKind,
}

/// A deterministic schedule of faults: a VRI track (spawn-order addressed)
/// and an adapter track (time addressed).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    adapter_events: Vec<AdapterFaultEvent>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule an arbitrary fault.
    pub fn push(mut self, at_ns: u64, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at_ns, kind });
        self
    }

    /// Crash the `nth`-spawned VRI at `at_ns`.
    pub fn crash_at(self, at_ns: u64, nth: usize) -> FaultPlan {
        self.push(at_ns, FaultKind::Crash { nth_spawn: nth })
    }

    /// Stall the `nth`-spawned VRI at `at_ns`.
    pub fn stall_at(self, at_ns: u64, nth: usize) -> FaultPlan {
        self.push(at_ns, FaultKind::Stall { nth_spawn: nth })
    }

    /// Resume the `nth`-spawned VRI at `at_ns`.
    pub fn resume_at(self, at_ns: u64, nth: usize) -> FaultPlan {
        self.push(at_ns, FaultKind::Resume { nth_spawn: nth })
    }

    /// Toggle control-queue loss for the `nth`-spawned VRI at `at_ns`.
    pub fn ctrl_loss_at(self, at_ns: u64, nth: usize, on: bool) -> FaultPlan {
        self.push(at_ns, FaultKind::CtrlLoss { nth_spawn: nth, on })
    }

    /// Schedule an arbitrary adapter fault.
    pub fn push_adapter(mut self, at_ns: u64, kind: AdapterFaultKind) -> FaultPlan {
        self.adapter_events.push(AdapterFaultEvent { at_ns, kind });
        self
    }

    /// Crash the socket adapter at `at_ns`.
    pub fn crash_adapter_at(self, at_ns: u64) -> FaultPlan {
        self.push_adapter(at_ns, AdapterFaultKind::Crash)
    }

    /// Stall the socket adapter at `at_ns`.
    pub fn stall_adapter_at(self, at_ns: u64) -> FaultPlan {
        self.push_adapter(at_ns, AdapterFaultKind::Stall)
    }

    /// Un-stall the socket adapter at `at_ns`.
    pub fn resume_adapter_at(self, at_ns: u64) -> FaultPlan {
        self.push_adapter(at_ns, AdapterFaultKind::Resume)
    }

    /// Start a `len`-frame RX error burst at `at_ns`.
    pub fn adapter_error_burst_at(self, at_ns: u64, len: u64) -> FaultPlan {
        self.push_adapter(at_ns, AdapterFaultKind::ErrorBurst { len })
    }

    /// Generate `count` faults uniformly over `(0, horizon_ns]` targeting
    /// spawn indices below `max_spawns`, all from `seed`. The same seed
    /// always yields the same plan.
    pub fn randomized(seed: u64, horizon_ns: u64, count: usize, max_spawns: usize) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let at_ns = 1 + rng.gen_range(0..horizon_ns.max(1));
            let nth = rng.gen_range(0..max_spawns.max(1));
            let kind = match rng.gen_range(0..4u8) {
                0 => FaultKind::Crash { nth_spawn: nth },
                1 => FaultKind::Stall { nth_spawn: nth },
                2 => FaultKind::Resume { nth_spawn: nth },
                _ => FaultKind::CtrlLoss { nth_spawn: nth, on: rng.gen_range(0..2u8) == 1 },
            };
            plan = plan.push(at_ns, kind);
        }
        plan
    }

    /// Generate `count` adapter faults uniformly over `(0, horizon_ns]`
    /// from `seed`. Crashes and stalls are always paired with later
    /// relief (reopen is the supervisor's job, resume is scheduled here for
    /// stalls), so a randomized storm never wedges a run forever.
    pub fn randomized_adapter(seed: u64, horizon_ns: u64, count: usize) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xada9_7e5f);
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let at_ns = 1 + rng.gen_range(0..horizon_ns.max(1));
            match rng.gen_range(0..3u8) {
                0 => plan = plan.crash_adapter_at(at_ns),
                1 => {
                    let relief = at_ns + 1 + rng.gen_range(0..horizon_ns.max(1) / 2);
                    plan = plan.stall_adapter_at(at_ns).resume_adapter_at(relief);
                }
                _ => {
                    let len = 1 + rng.gen_range(0..16u64);
                    plan = plan.adapter_error_burst_at(at_ns, len);
                }
            }
        }
        plan
    }

    /// The scheduled VRI events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The scheduled adapter events, in insertion order.
    pub fn adapter_events(&self) -> &[AdapterFaultEvent] {
        &self.adapter_events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.adapter_events.is_empty()
    }
}

/// The self-harm verbs a host must offer for [`FaultyHost`] to drive it.
pub trait FaultInjectable {
    /// Kill the VRI's execution vehicle abruptly: endpoint detaches,
    /// in-flight frames stay queued for reaping. Not monitor work — the
    /// supervisor discovers it via the detached endpoint.
    fn inject_crash(&mut self, vri: VriId);

    /// Wedge (`on = true`) or un-wedge the VRI's service loop.
    fn inject_stall(&mut self, vri: VriId, on: bool);

    /// Start or stop dropping the VRI's upstream liveness traffic.
    fn inject_ctrl_loss(&mut self, vri: VriId, on: bool);
}

impl FaultInjectable for RecordingHost {
    fn inject_crash(&mut self, vri: VriId) {
        self.crash_vri(vri);
    }

    fn inject_stall(&mut self, vri: VriId, on: bool) {
        if on {
            self.stalled.insert(vri);
        } else {
            self.stalled.remove(&vri);
        }
    }

    fn inject_ctrl_loss(&mut self, vri: VriId, on: bool) {
        if on {
            self.ctrl_mute.insert(vri);
        } else {
            self.ctrl_mute.remove(&vri);
        }
    }
}

/// A [`VriHost`] wrapper that fires a [`FaultPlan`] as time advances.
///
/// Spawns pass through and are recorded in order, so plan entries addressed
/// by spawn index resolve to concrete [`VriId`]s at fire time. Call
/// [`apply`] with the current timestamp from the driving loop; due events
/// fire in schedule order. Events targeting a spawn index that has not
/// happened yet are dropped (counted in `skipped`). The adapter track is
/// ignored here — hand the same plan to [`FaultySocket::with_plan`].
///
/// [`apply`]: FaultyHost::apply
pub struct FaultyHost<H> {
    pub inner: H,
    plan: Vec<FaultEvent>,
    cursor: usize,
    /// VriId of every spawn the wrapped host ever saw, in order.
    pub spawn_order: Vec<VriId>,
    /// Faults fired so far.
    pub injected: u64,
    /// Plan entries dropped because their target never spawned.
    pub skipped: u64,
}

impl<H> FaultyHost<H> {
    pub fn new(inner: H, plan: FaultPlan) -> FaultyHost<H> {
        let mut events = plan.events;
        events.sort_by_key(|e| e.at_ns);
        FaultyHost {
            inner,
            plan: events,
            cursor: 0,
            spawn_order: Vec::new(),
            injected: 0,
            skipped: 0,
        }
    }

    fn target(&self, nth: usize) -> Option<VriId> {
        self.spawn_order.get(nth).copied()
    }
}

impl<H: VriHost + FaultInjectable> FaultyHost<H> {
    /// Fire every event due at or before `now_ns`. Returns how many fired.
    pub fn apply(&mut self, now_ns: u64) -> usize {
        let mut fired = 0;
        while self.cursor < self.plan.len() && self.plan[self.cursor].at_ns <= now_ns {
            let ev = self.plan[self.cursor];
            self.cursor += 1;
            let nth = match ev.kind {
                FaultKind::Crash { nth_spawn }
                | FaultKind::Stall { nth_spawn }
                | FaultKind::Resume { nth_spawn }
                | FaultKind::CtrlLoss { nth_spawn, .. } => nth_spawn,
            };
            let Some(vri) = self.target(nth) else {
                self.skipped += 1;
                continue;
            };
            match ev.kind {
                FaultKind::Crash { .. } => self.inner.inject_crash(vri),
                FaultKind::Stall { .. } => self.inner.inject_stall(vri, true),
                FaultKind::Resume { .. } => self.inner.inject_stall(vri, false),
                FaultKind::CtrlLoss { on, .. } => self.inner.inject_ctrl_loss(vri, on),
            }
            self.injected += 1;
            fired += 1;
        }
        fired
    }
}

impl<H: VriHost> VriHost for FaultyHost<H> {
    fn spawn_vri(
        &mut self,
        spec: VriSpec,
        endpoint: VriEndpoint<Frame>,
        router: Box<dyn VirtualRouter>,
    ) {
        self.spawn_order.push(spec.vri);
        self.inner.spawn_vri(spec, endpoint, router);
    }

    fn kill_vri(&mut self, vr: VrId, vri: VriId) {
        self.inner.kill_vri(vr, vri);
    }

    fn reap_endpoint(&mut self, vri: VriId) -> Option<VriEndpoint<Frame>> {
        self.inner.reap_endpoint(vri)
    }
}

/// A [`SocketAdapter`] wrapper modeling NIC misbehavior. Three independent
/// failure channels, all deterministic:
///
/// * **RX error bursts** — windows of arriving frames, addressed by frame
///   index (not time, so a burst hits the same frames on every run
///   regardless of poll cadence), consumed from the inner adapter and
///   surfaced as [`AdapterError::Transient`];
/// * **refused sends** — windows of send *attempts*, addressed by attempt
///   index, handed back intact in a [`SendRejected`];
/// * **crash/stall** — flipped by the plan's adapter track via
///   [`apply`](FaultySocket::apply) (or the `crashed_from_start` /
///   `stalled_from_start` builders); cleared by
///   [`reopen`](SocketAdapter::reopen), modeling a NIC restart.
pub struct FaultySocket<S> {
    pub inner: S,
    bursts: Vec<(u64, u64)>,
    send_fails: Vec<(u64, u64)>,
    plan: Vec<AdapterFaultEvent>,
    cursor: usize,
    seen: u64,
    send_seen: u64,
    crashed: bool,
    stalled: bool,
    /// Frames eaten by error bursts.
    pub rx_errors: u64,
    /// Send attempts refused by the send-fail windows.
    pub tx_errors: u64,
    /// Adapter-track events fired so far.
    pub injected: u64,
}

impl<S> FaultySocket<S> {
    pub fn new(inner: S) -> FaultySocket<S> {
        FaultySocket {
            inner,
            bursts: Vec::new(),
            send_fails: Vec::new(),
            plan: Vec::new(),
            cursor: 0,
            seen: 0,
            send_seen: 0,
            crashed: false,
            stalled: false,
            rx_errors: 0,
            tx_errors: 0,
            injected: 0,
        }
    }

    /// Wrap `inner` and arm the adapter track of `plan` (time-addressed
    /// crash/stall/burst events fired by [`apply`](FaultySocket::apply)).
    pub fn with_plan(inner: S, plan: &FaultPlan) -> FaultySocket<S> {
        let mut events = plan.adapter_events.clone();
        events.sort_by_key(|e| e.at_ns);
        let mut sock = FaultySocket::new(inner);
        sock.plan = events;
        sock
    }

    /// Error out `len` frames starting at arrival index `start` (0-based).
    pub fn error_burst(mut self, start: u64, len: u64) -> FaultySocket<S> {
        self.bursts.push((start, len));
        self
    }

    /// Refuse `len` send attempts starting at attempt index `start`.
    pub fn send_fail(mut self, start: u64, len: u64) -> FaultySocket<S> {
        self.send_fails.push((start, len));
        self
    }

    /// Begin life crashed (every op fails `Fatal` until reopened).
    pub fn crashed_from_start(mut self) -> FaultySocket<S> {
        self.crashed = true;
        self
    }

    /// Begin life stalled (every op fails `Stalled` until resumed/reopened).
    pub fn stalled_from_start(mut self) -> FaultySocket<S> {
        self.stalled = true;
        self
    }

    /// Fire every adapter-track event due at or before `now_ns`.
    pub fn apply(&mut self, now_ns: u64) -> usize {
        let mut fired = 0;
        while self.cursor < self.plan.len() && self.plan[self.cursor].at_ns <= now_ns {
            let ev = self.plan[self.cursor];
            self.cursor += 1;
            match ev.kind {
                AdapterFaultKind::Crash => self.crashed = true,
                AdapterFaultKind::Stall => self.stalled = true,
                AdapterFaultKind::Resume => self.stalled = false,
                AdapterFaultKind::ErrorBurst { len } => self.bursts.push((self.seen, len)),
            }
            self.injected += 1;
            fired += 1;
        }
        fired
    }

    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    fn down_error(&self) -> Option<AdapterError> {
        if self.crashed {
            Some(AdapterError::Fatal)
        } else if self.stalled {
            Some(AdapterError::Stalled)
        } else {
            None
        }
    }

    fn is_rx_error(&self, idx: u64) -> bool {
        self.bursts.iter().any(|&(s, l)| idx >= s && idx < s.saturating_add(l))
    }

    fn is_tx_error(&self, idx: u64) -> bool {
        self.send_fails.iter().any(|&(s, l)| idx >= s && idx < s.saturating_add(l))
    }
}

impl<S: SocketAdapter> SocketAdapter for FaultySocket<S> {
    fn poll(&mut self) -> Result<Frame, AdapterError> {
        if let Some(e) = self.down_error() {
            return Err(e);
        }
        let f = self.inner.poll()?;
        let idx = self.seen;
        self.seen += 1;
        if self.is_rx_error(idx) {
            self.rx_errors += 1;
            // The frame was consumed from the ring but arrived damaged.
            return Err(AdapterError::Transient(io::Error::new(
                io::ErrorKind::InvalidData,
                "injected rx error burst",
            )));
        }
        Ok(f)
    }

    fn send(&mut self, frame: Frame) -> Result<(), SendRejected> {
        if let Some(e) = self.down_error() {
            return Err(SendRejected { frame, error: e });
        }
        let idx = self.send_seen;
        self.send_seen += 1;
        if self.is_tx_error(idx) {
            self.tx_errors += 1;
            return Err(SendRejected {
                frame,
                error: AdapterError::Transient(io::Error::other("injected tx refusal")),
            });
        }
        self.inner.send(frame)
    }

    /// Clears crash/stall (a NIC restart) and reopens the inner adapter.
    fn reopen(&mut self) -> Result<(), AdapterError> {
        self.crashed = false;
        self.stalled = false;
        self.inner.reopen()
    }

    /// Consume due plan events; lets a boxed `FaultySocket` inside a
    /// supervisor chain fire time-addressed faults.
    fn advance(&mut self, now_ns: u64) {
        self.apply(now_ns);
        self.inner.advance(now_ns);
    }

    fn kind(&self) -> SocketKind {
        self.inner.kind()
    }

    /// Frames actually delivered to LVRM (errored frames excluded).
    fn rx_count(&self) -> u64 {
        self.inner.rx_count() - self.rx_errors
    }

    fn tx_count(&self) -> u64 {
        self.inner.tx_count()
    }
}

/// Avalanche mixer (splitmix64 finalizer) — the seed-to-jitter hash, and
/// the per-shard weight mixer behind `shard::rendezvous_owner`.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministically jitter `base_ns` into `[0.75·base, 1.25·base]`, keyed
/// by an instance `salt` and a per-attempt `nonce`. Exponential backoff
/// without jitter synchronizes every peer that failed together (the
/// thundering herd); ±25% keyed per instance de-phases their retries while
/// staying exactly reproducible for tests.
pub fn jittered_backoff(base_ns: u64, salt: u64, nonce: u64) -> u64 {
    let span = base_ns / 2;
    let lo = base_ns - base_ns / 4;
    if span == 0 {
        return base_ns;
    }
    lo + splitmix64(salt ^ nonce.rotate_left(32)) % (span + 1)
}

/// One kind of injected *peer-link* failure, active over a window of
/// simulated time (the HA fault track: advert loss, delivery delay,
/// partition — the raw material of split-brain chaos tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// Drop everything sent in the window (a cut cable). Wrap both ends'
    /// links for a symmetric partition, one end for an asymmetric one.
    Partition,
    /// Drop each message sent in the window with probability
    /// `drop_per_mille / 1000` (seeded, reproducible).
    Loss { drop_per_mille: u16 },
    /// Deliver messages sent in the window `delay_ns` late.
    Delay { delay_ns: u64 },
}

/// A [`LinkFaultKind`] active over `[from_ns, until_ns)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFaultWindow {
    pub from_ns: u64,
    pub until_ns: u64,
    pub kind: LinkFaultKind,
}

impl LinkFaultWindow {
    pub fn partition(from_ns: u64, until_ns: u64) -> LinkFaultWindow {
        LinkFaultWindow { from_ns, until_ns, kind: LinkFaultKind::Partition }
    }
    pub fn loss(from_ns: u64, until_ns: u64, drop_per_mille: u16) -> LinkFaultWindow {
        LinkFaultWindow { from_ns, until_ns, kind: LinkFaultKind::Loss { drop_per_mille } }
    }
    pub fn delay(from_ns: u64, until_ns: u64, delay_ns: u64) -> LinkFaultWindow {
        LinkFaultWindow { from_ns, until_ns, kind: LinkFaultKind::Delay { delay_ns } }
    }

    fn active(&self, now_ns: u64) -> bool {
        now_ns >= self.from_ns && now_ns < self.until_ns
    }
}

/// Generate a seeded storm of link fault windows over `(0, horizon_ns]`,
/// each at most `max_window_ns` long. The cap is the split-brain guard's
/// operating envelope: outages shorter than the master-down interval while
/// both monitors live never elect a second accepting master (DESIGN.md
/// §13) — kill the master separately to exercise real failover.
pub fn randomized_link_storm(
    seed: u64,
    horizon_ns: u64,
    count: usize,
    max_window_ns: u64,
) -> Vec<LinkFaultWindow> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x11f0_57a9);
    let mut windows = Vec::with_capacity(count);
    for _ in 0..count {
        let from_ns = 1 + rng.gen_range(0..horizon_ns.max(1));
        let until_ns = from_ns + 1 + rng.gen_range(0..max_window_ns.max(1));
        windows.push(match rng.gen_range(0..3u8) {
            0 => LinkFaultWindow::partition(from_ns, until_ns),
            1 => LinkFaultWindow::loss(from_ns, until_ns, rng.gen_range(100..900)),
            _ => LinkFaultWindow::delay(from_ns, until_ns, rng.gen_range(0..max_window_ns.max(1))),
        });
    }
    windows
}

/// Generate a seeded storm for the *fleet* chaos track: like
/// [`randomized_link_storm`] but with windows laid out sequentially and
/// separated by quiet gaps of at least `2 × max_window_ns`, so no two
/// windows coalesce into one outage longer than the cap. Keep
/// `max_window_ns` below `shard_down − 2 × advert` and a storm can degrade
/// delivery arbitrarily without ever legitimately burying a live shard —
/// any takeover under such a storm is a split-brain bug, which is exactly
/// what the fleet suite asserts.
pub fn randomized_fleet_storm(
    seed: u64,
    horizon_ns: u64,
    count: usize,
    max_window_ns: u64,
) -> Vec<LinkFaultWindow> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xf1ee_707a);
    let mut windows = Vec::with_capacity(count);
    let mut cursor = 1u64;
    for _ in 0..count {
        let from_ns = cursor + rng.gen_range(0..max_window_ns.max(1));
        let until_ns = from_ns + 1 + rng.gen_range(0..max_window_ns.max(1));
        if until_ns >= horizon_ns {
            break;
        }
        windows.push(match rng.gen_range(0..3u8) {
            0 => LinkFaultWindow::partition(from_ns, until_ns),
            1 => LinkFaultWindow::loss(from_ns, until_ns, rng.gen_range(100..900)),
            _ => LinkFaultWindow::delay(from_ns, until_ns, rng.gen_range(0..max_window_ns.max(1))),
        });
        cursor = until_ns + 2 * max_window_ns.max(1);
    }
    windows
}

/// A [`PeerLink`] wrapper firing [`LinkFaultWindow`]s as simulated time
/// advances: sends inside a partition window vanish, loss windows drop
/// probabilistically (seeded), delay windows park messages until their
/// release instant. Deterministic: same windows + seed + call sequence ⇒
/// same delivered stream.
pub struct FaultyLink<L> {
    pub inner: L,
    windows: Vec<LinkFaultWindow>,
    rng: SmallRng,
    /// Parked messages awaiting their release instant, in send order.
    delayed: Vec<(u64, Vec<u8>)>,
    /// Messages swallowed by partition/loss windows.
    pub dropped: u64,
    /// Messages that took a delay window.
    pub delayed_count: u64,
}

impl<L: PeerLink> FaultyLink<L> {
    pub fn new(inner: L, windows: Vec<LinkFaultWindow>, seed: u64) -> FaultyLink<L> {
        FaultyLink {
            inner,
            windows,
            rng: SmallRng::seed_from_u64(seed ^ 0xfa17_71a6),
            delayed: Vec::new(),
            dropped: 0,
            delayed_count: 0,
        }
    }

    /// Release parked messages whose delay has elapsed, preserving order.
    fn pump(&mut self, now_ns: u64) {
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now_ns {
                let (_, bytes) = self.delayed.remove(i);
                self.inner.send(now_ns, &bytes);
            } else {
                i += 1;
            }
        }
    }
}

impl<L: PeerLink> PeerLink for FaultyLink<L> {
    fn send(&mut self, now_ns: u64, bytes: &[u8]) {
        self.pump(now_ns);
        let mut delay: Option<u64> = None;
        for w in &self.windows {
            if !w.active(now_ns) {
                continue;
            }
            match w.kind {
                LinkFaultKind::Partition => {
                    self.dropped += 1;
                    return;
                }
                LinkFaultKind::Loss { drop_per_mille } => {
                    if self.rng.gen_range(0..1000u16) < drop_per_mille {
                        self.dropped += 1;
                        return;
                    }
                }
                LinkFaultKind::Delay { delay_ns } => {
                    delay = Some(delay.map_or(delay_ns, |d: u64| d.max(delay_ns)));
                }
            }
        }
        if let Some(d) = delay {
            self.delayed_count += 1;
            self.delayed.push((now_ns + d, bytes.to_vec()));
        } else {
            self.inner.send(now_ns, bytes);
        }
    }

    fn recv(&mut self, now_ns: u64, out: &mut Vec<Vec<u8>>) {
        self.pump(now_ns);
        self.inner.recv(now_ns, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::MemTraceAdapter;
    use crate::topology::CoreId;
    use lvrm_ipc::QueueKind;
    use lvrm_net::{Trace, TraceSpec};
    use lvrm_router::{FastVr, RouteTable};

    fn spawn(host: &mut FaultyHost<RecordingHost>, vri: u32) {
        let (_chans, endpoint) =
            lvrm_ipc::channels::vri_channels::<Frame>(QueueKind::Lamport, 8, 4);
        host.spawn_vri(
            VriSpec { vr: VrId(0), vri: VriId(vri), core: CoreId(vri as u16) },
            endpoint,
            Box::new(FastVr::new("t", RouteTable::new())),
        );
    }

    fn mem(frames: u64) -> MemTraceAdapter {
        MemTraceAdapter::new(Trace::generate(&TraceSpec::new(84, 4)), frames)
    }

    #[test]
    fn plan_fires_in_time_order_against_spawn_order() {
        let plan = FaultPlan::new().stall_at(200, 1).crash_at(100, 0);
        let mut host = FaultyHost::new(RecordingHost::default(), plan);
        spawn(&mut host, 10);
        spawn(&mut host, 11);
        assert_eq!(host.apply(50), 0, "nothing due yet");
        assert_eq!(host.apply(150), 1, "crash fires");
        assert!(host.inner.endpoints.iter().all(|(id, _, _)| *id != VriId(10)));
        assert_eq!(host.apply(300), 1, "stall fires");
        assert!(host.inner.stalled.contains(&VriId(11)));
        assert_eq!(host.injected, 2);
    }

    #[test]
    fn faults_for_unspawned_targets_are_skipped() {
        let plan = FaultPlan::new().crash_at(10, 7);
        let mut host = FaultyHost::new(RecordingHost::default(), plan);
        spawn(&mut host, 1);
        assert_eq!(host.apply(100), 0);
        assert_eq!(host.skipped, 1);
    }

    #[test]
    fn randomized_plans_are_reproducible() {
        let a = FaultPlan::randomized(42, 1_000_000, 16, 4);
        let b = FaultPlan::randomized(42, 1_000_000, 16, 4);
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::randomized(43, 1_000_000, 16, 4);
        assert_ne!(a.events(), c.events(), "different seed, different plan");
        let d = FaultPlan::randomized_adapter(42, 1_000_000, 8);
        let e = FaultPlan::randomized_adapter(42, 1_000_000, 8);
        assert_eq!(d.adapter_events(), e.adapter_events());
    }

    #[test]
    fn faulty_socket_surfaces_exactly_the_burst() {
        let mut sock = FaultySocket::new(mem(10)).error_burst(2, 3);
        let (mut got, mut errs) = (0u64, 0u64);
        loop {
            match sock.poll() {
                Ok(_) => got += 1,
                Err(AdapterError::WouldBlock) => break,
                Err(AdapterError::Transient(_)) => errs += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(got, 7, "indices 2..5 errored");
        assert_eq!(errs, 3, "each eaten frame surfaced as a transient error");
        assert_eq!(sock.rx_errors, 3);
        assert_eq!(sock.rx_count(), 7);
    }

    #[test]
    fn refused_sends_hand_the_frame_back() {
        let mut sock = FaultySocket::new(mem(5)).send_fail(1, 2);
        let mut frames = Vec::new();
        sock.poll_batch(&mut frames, 5).unwrap();
        assert_eq!(frames.len(), 5);
        let mut refused = 0;
        for f in frames.drain(..) {
            if let Err(rej) = sock.send(f) {
                assert!(!rej.error.is_would_block());
                refused += 1;
            }
        }
        assert_eq!(refused, 2, "attempts 1 and 2 refused");
        assert_eq!(sock.tx_errors, 2);
        assert_eq!(sock.tx_count(), 3, "only accepted frames count");
    }

    #[test]
    fn adapter_track_crash_is_fatal_until_reopen() {
        let plan = FaultPlan::new().crash_adapter_at(100);
        let mut sock = FaultySocket::with_plan(mem(10), &plan);
        assert!(sock.poll().is_ok());
        assert_eq!(sock.apply(50), 0);
        assert_eq!(sock.apply(150), 1);
        assert!(matches!(sock.poll(), Err(AdapterError::Fatal)));
        let f = Trace::generate(&TraceSpec::new(84, 4)).frames()[0].clone();
        let rej = sock.send(f).unwrap_err();
        assert!(matches!(rej.error, AdapterError::Fatal), "frame handed back on crash");
        sock.reopen().unwrap();
        assert!(sock.poll().is_ok(), "reopen models a NIC restart");
    }

    #[test]
    fn adapter_track_stall_resumes() {
        let plan = FaultPlan::new().stall_adapter_at(10).resume_adapter_at(20);
        let mut sock = FaultySocket::with_plan(mem(10), &plan);
        sock.apply(10);
        assert!(matches!(sock.poll(), Err(AdapterError::Stalled)));
        sock.apply(20);
        assert!(sock.poll().is_ok());
    }

    #[test]
    fn timed_error_burst_starts_at_current_arrival_index() {
        let plan = FaultPlan::new().adapter_error_burst_at(100, 2);
        let mut sock = FaultySocket::with_plan(mem(6), &plan);
        assert!(sock.poll().is_ok());
        assert!(sock.poll().is_ok());
        sock.apply(100); // burst armed at arrival index 2
        assert!(matches!(sock.poll(), Err(AdapterError::Transient(_))));
        assert!(matches!(sock.poll(), Err(AdapterError::Transient(_))));
        assert!(sock.poll().is_ok());
        assert_eq!(sock.rx_errors, 2);
    }

    #[test]
    fn faulty_link_partition_drops_and_heals() {
        let (a, b) = crate::ha::ChannelLink::pair();
        let mut tx = FaultyLink::new(a, vec![LinkFaultWindow::partition(100, 200)], 7);
        let mut rx = b;
        let mut out = Vec::new();
        tx.send(50, b"before");
        tx.send(150, b"inside");
        tx.send(250, b"after");
        rx.recv(250, &mut out);
        let got: Vec<&[u8]> = out.iter().map(|v| v.as_slice()).collect();
        assert_eq!(got, vec![b"before".as_slice(), b"after".as_slice()]);
        assert_eq!(tx.dropped, 1);
    }

    #[test]
    fn faulty_link_delay_parks_until_release() {
        let (a, b) = crate::ha::ChannelLink::pair();
        let mut tx = FaultyLink::new(a, vec![LinkFaultWindow::delay(0, 500, 500)], 7);
        let mut rx = b;
        let mut out = Vec::new();
        tx.send(100, b"slow");
        rx.recv(200, &mut out);
        assert!(out.is_empty(), "parked until 600");
        tx.send(700, b"later"); // pump on the sender side releases the parked msg
        rx.recv(700, &mut out);
        let got: Vec<&[u8]> = out.iter().map(|v| v.as_slice()).collect();
        assert_eq!(got, vec![b"slow".as_slice(), b"later".as_slice()]);
        assert_eq!(tx.delayed_count, 1);
    }

    #[test]
    fn faulty_link_loss_is_seeded_and_reproducible() {
        let run = |seed: u64| {
            let (a, b) = crate::ha::ChannelLink::pair();
            let mut tx = FaultyLink::new(a, vec![LinkFaultWindow::loss(0, 10_000, 500)], seed);
            let mut rx = b;
            for i in 0..100u64 {
                tx.send(i * 10, &i.to_le_bytes());
            }
            let mut out = Vec::new();
            rx.recv(10_000, &mut out);
            (tx.dropped, out)
        };
        let (d1, o1) = run(3);
        let (d2, o2) = run(3);
        let (d3, o3) = run(4);
        assert_eq!((d1, &o1), (d2, &o2), "same seed, same stream");
        assert!(d1 > 20 && d1 < 80, "~50% loss, got {d1}");
        assert!(o1 != o3 || d1 != d3, "different seed should diverge");
    }

    #[test]
    fn randomized_link_storms_are_reproducible_and_bounded() {
        let a = randomized_link_storm(9, 10_000_000, 16, 250_000);
        let b = randomized_link_storm(9, 10_000_000, 16, 250_000);
        let c = randomized_link_storm(10, 10_000_000, 16, 250_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
        for w in &a {
            assert!(w.until_ns > w.from_ns);
            assert!(w.until_ns - w.from_ns <= 250_001, "window exceeds cap: {w:?}");
        }
    }
}
