//! Warm-restart acceptance suite (DESIGN.md §10): kill a monitor, restore
//! its successor from the checkpoint, and prove that flow affinity and all
//! four conservation identities survive the restart epoch — for every
//! `QueueKind`. In-flight frames at checkpoint time are not wished away:
//! the fold charges them to `crash_lost`/`queue_lost`, so the restored
//! books balance to the frame.
//!
//! Set `LVRM_CHAOS_QUEUE` to one of `lamport` / `fastforward` / `mutex` / `vlink` to
//! restrict the sweep (the CI matrix does this); unset runs all three.

use std::net::Ipv4Addr;
use std::path::PathBuf;

use lvrm_core::{
    AffinityMode, AllocatorKind, Checkpoint, CoreId, CoreMap, CoreTopology, Lvrm, LvrmConfig,
    ManualClock, RecordingHost, VrId,
};
use lvrm_ipc::QueueKind;
use lvrm_net::{Frame, FrameBuilder};
use lvrm_router::VirtualRouter;

const STEP_NS: u64 = 100_000_000; // 100 ms
const WARMUP_STEPS: u64 = if cfg!(miri) { 10 } else { 30 };
const FLOWS: usize = 8;

fn queue_kinds() -> Vec<QueueKind> {
    match std::env::var("LVRM_CHAOS_QUEUE") {
        Ok(want) => vec![want.parse::<QueueKind>().expect("LVRM_CHAOS_QUEUE")],
        Err(_) => QueueKind::ALL.to_vec(),
    }
}

fn restart_config(kind: QueueKind) -> LvrmConfig {
    LvrmConfig {
        queue_kind: kind,
        allocator: AllocatorKind::Fixed { cores: 2 },
        supervision: true,
        // Affinity is the point of this suite: flows must stay pinned.
        flow_based: true,
        ..Default::default()
    }
}

fn new_lvrm(clock: ManualClock, config: LvrmConfig) -> Lvrm<ManualClock> {
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    Lvrm::new(config, cores, clock)
}

fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new(name, routes))
}

fn subnet() -> [(Ipv4Addr, u8); 1] {
    [(Ipv4Addr::new(10, 0, 1, 0), 24)]
}

/// Flow `i` of the test population: distinct 5-tuples, all in the VR's
/// subnet, stable across the restart.
fn flow_frame(i: usize) -> Frame {
    FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 20 + i as u8), Ipv4Addr::new(10, 0, 2, 1)).udp(
        4000 + i as u16,
        80,
        &[],
    )
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lvrm-warm-restart");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}", std::process::id()))
}

/// Pump/relay/collect until nothing moves.
fn drain(lvrm: &mut Lvrm<ManualClock>, host: &mut RecordingHost, out: &mut Vec<Frame>) {
    loop {
        let processed = host.pump();
        lvrm.process_control();
        let egress = lvrm.poll_egress(out);
        if processed == 0 && egress == 0 {
            break;
        }
    }
}

/// Drive `steps` ticks of round-robin traffic over the flow population,
/// starting at `t0`. Leaves the pipeline drained.
fn run_traffic(
    lvrm: &mut Lvrm<ManualClock>,
    clock: &ManualClock,
    host: &mut RecordingHost,
    t0: u64,
    steps: u64,
    out: &mut Vec<Frame>,
) {
    for s in 0..steps {
        let t = t0 + s * STEP_NS;
        clock.set_ns(t);
        for i in 0..FLOWS {
            lvrm.ingress(flow_frame(i), host);
        }
        host.pump();
        lvrm.process_control();
        lvrm.maybe_reallocate(t, host);
        lvrm.poll_egress(out);
    }
    drain(lvrm, host, out);
}

/// Which VRI slot serves flow `i` right now: send one probe frame, drain,
/// and read the per-slot dispatch delta.
fn probe_slot(
    lvrm: &mut Lvrm<ManualClock>,
    host: &mut RecordingHost,
    vr: VrId,
    i: usize,
    out: &mut Vec<Frame>,
) -> usize {
    let before = lvrm.vri_dispatch_counts(vr);
    lvrm.ingress(flow_frame(i), host);
    drain(lvrm, host, out);
    let after = lvrm.vri_dispatch_counts(vr);
    assert_eq!(before.len(), after.len(), "probe must not resize the VR");
    let hits: Vec<usize> = after
        .iter()
        .zip(&before)
        .enumerate()
        .filter(|(_, (a, b))| *a > *b)
        .map(|(slot, _)| slot)
        .collect();
    assert_eq!(hits.len(), 1, "exactly one slot must serve flow {i}, got {hits:?}");
    hits[0]
}

/// All four conservation identities, from the public stats/snapshot
/// surface. Call on a drained monitor (queues and egress rings empty).
fn assert_identities(lvrm: &Lvrm<ManualClock>, ctx: &str) {
    let s = lvrm.stats();
    // (1) global frame conservation.
    assert_eq!(
        s.frames_in,
        s.frames_out
            + s.unclassified
            + s.dispatch_drops
            + s.no_vri_drops
            + s.shrink_lost
            + s.crash_lost
            + s.quarantined_drops
            + s.shed_early,
        "(1) global conservation violated {ctx}: {s:?}"
    );
    let snap = lvrm.snapshot();
    // (2) per-VR admission.
    for vr in &snap {
        assert_eq!(
            vr.frames_in,
            vr.admitted + vr.shed,
            "(2) admission identity violated for {} {ctx}",
            vr.name
        );
    }
    // (3) dispatch identity over live + draining + retired series.
    let live_dispatched: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.dispatched).sum();
    let live_returned: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.returned).sum();
    let queued: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.queue_len as u64).sum();
    assert_eq!(
        live_dispatched + s.retired_dispatched,
        live_returned + s.retired_returned + queued + s.reclaimed + s.queue_lost,
        "(3) dispatch identity violated {ctx}: {s:?}"
    );
    // (4) drop identity.
    let live_drops: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.dispatch_drops).sum();
    assert_eq!(
        s.dispatch_drops,
        live_drops + s.retired_dispatch_drops,
        "(4) drop identity violated {ctx}: {s:?}"
    );
}

/// The acceptance scenario: warm up, checkpoint, kill, restore — flow
/// affinity and every identity must survive into the new epoch, and the
/// counters must resume rather than reset.
#[test]
fn restart_preserves_affinity_and_all_identities() {
    for kind in queue_kinds() {
        let path = temp_path(&format!("affinity-{}.ck", kind.name()));
        let mut out = Vec::new();

        // --- first life -------------------------------------------------
        let clock_a = ManualClock::new();
        let mut lvrm_a = new_lvrm(clock_a.clone(), restart_config(kind));
        let mut host_a = RecordingHost::with_heartbeats();
        let vr_a = lvrm_a.add_vr("deptA", &subnet(), routed_vr("a"), &mut host_a);
        run_traffic(&mut lvrm_a, &clock_a, &mut host_a, 0, WARMUP_STEPS, &mut out);

        let slots_pre: Vec<usize> =
            (0..FLOWS).map(|i| probe_slot(&mut lvrm_a, &mut host_a, vr_a, i, &mut out)).collect();
        assert!(
            slots_pre.iter().any(|&s| s != slots_pre[0]),
            "{kind:?}: warmup must spread flows over both slots, got {slots_pre:?}"
        );

        let t_ck = WARMUP_STEPS * STEP_NS + STEP_NS;
        assert!(lvrm_a.checkpoint_to(&path, t_ck), "{kind:?}: checkpoint must write");
        let ck = Checkpoint::load(&path).expect("written checkpoint must load");
        assert_eq!(ck.epoch, 0);
        drop(lvrm_a); // the kill

        // --- second life ------------------------------------------------
        let clock_b = ManualClock::new();
        clock_b.set_ns(t_ck);
        let mut lvrm_b = new_lvrm(clock_b.clone(), restart_config(kind));
        let mut host_b = RecordingHost::with_heartbeats();
        let vr_b = lvrm_b.add_vr("deptA", &subnet(), routed_vr("a"), &mut host_b);

        let epoch = lvrm_b.restore_from(&path, &mut host_b).expect("restore must succeed");
        assert_eq!(epoch, 1, "{kind:?}: first restart is epoch 1");
        assert_eq!(lvrm_b.epoch(), 1, "{kind:?}");
        assert_eq!(lvrm_b.vri_count(vr_b), 2, "{kind:?}: VRI population restored");

        // Identities hold the instant the restore lands, before any new
        // traffic: the fold already accounted the previous life.
        assert_identities(&lvrm_b, &format!("post-restore {kind:?}"));
        let s_b = lvrm_b.stats();
        assert_eq!(s_b.frames_in, ck.stats.frames_in, "{kind:?}: counters resume, not reset");
        assert_eq!(s_b.crash_lost, ck.stats.crash_lost, "{kind:?}");

        // Affinity: every flow must land on the slot it had before the
        // restart, and none of the probes may be a fresh pick.
        let slots_post: Vec<usize> =
            (0..FLOWS).map(|i| probe_slot(&mut lvrm_b, &mut host_b, vr_b, i, &mut out)).collect();
        assert_eq!(slots_pre, slots_post, "{kind:?}: flow affinity must survive the restart");
        lvrm_b.refresh_registry();
        let snap = lvrm_b.metrics_snapshot();
        assert_eq!(
            snap.counter("lvrm_vr_flow_fresh_total", &[("vr", "deptA")]),
            Some(0),
            "{kind:?}: restored flows must hit the table, not re-pick"
        );
        assert!(
            snap.counter("lvrm_vr_flow_sticky_total", &[("vr", "deptA")]).unwrap_or(0)
                >= FLOWS as u64,
            "{kind:?}: probes must be sticky hits"
        );
        assert_eq!(
            snap.gauge("lvrm_restore_epoch", &[]),
            Some(1.0),
            "{kind:?}: the restart epoch is exported"
        );

        // New-epoch traffic keeps the books balanced and moving.
        let sent_before = lvrm_b.stats().frames_in;
        run_traffic(&mut lvrm_b, &clock_b, &mut host_b, t_ck + STEP_NS, 10, &mut out);
        let s_end = lvrm_b.stats();
        assert_eq!(
            s_end.frames_in,
            sent_before + 10 * FLOWS as u64,
            "{kind:?}: new-epoch ingress accumulates on the restored baseline"
        );
        assert_identities(&lvrm_b, &format!("post-restore traffic {kind:?}"));

        std::fs::remove_file(&path).ok();
    }
}

/// Kill with frames still parked in VRI queues: the checkpoint fold must
/// charge them to `crash_lost`/`queue_lost` so the restored monitor's
/// books balance without ever seeing those frames.
#[test]
fn mid_flight_frames_are_charged_to_the_restart() {
    for kind in queue_kinds() {
        let path = temp_path(&format!("midflight-{}.ck", kind.name()));
        let mut out = Vec::new();

        let clock_a = ManualClock::new();
        let mut lvrm_a = new_lvrm(clock_a.clone(), restart_config(kind));
        let mut host_a = RecordingHost::with_heartbeats();
        lvrm_a.add_vr("deptA", &subnet(), routed_vr("a"), &mut host_a);
        run_traffic(&mut lvrm_a, &clock_a, &mut host_a, 0, 5, &mut out);

        // Strand a burst: dispatched to VRI queues, never pumped.
        let stranded = 24u64;
        let mut burst: Vec<Frame> = (0..stranded).map(|i| flow_frame(i as usize % FLOWS)).collect();
        let t_ck = 5 * STEP_NS + STEP_NS;
        clock_a.set_ns(t_ck);
        lvrm_a.ingress_batch(&mut burst, &mut host_a);
        assert!(lvrm_a.checkpoint_to(&path, t_ck));
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(
            ck.stats.crash_lost, stranded,
            "{kind:?}: every in-flight frame is charged to the restart"
        );
        drop(lvrm_a);

        let clock_b = ManualClock::new();
        clock_b.set_ns(t_ck);
        let mut lvrm_b = new_lvrm(clock_b.clone(), restart_config(kind));
        let mut host_b = RecordingHost::with_heartbeats();
        lvrm_b.add_vr("deptA", &subnet(), routed_vr("a"), &mut host_b);
        lvrm_b.restore_from(&path, &mut host_b).expect("restore must succeed");

        assert_identities(&lvrm_b, &format!("mid-flight restore {kind:?}"));
        assert_eq!(lvrm_b.stats().crash_lost, stranded, "{kind:?}");

        std::fs::remove_file(&path).ok();
    }
}

/// A checkpointed VR with no counterpart in the restored monitor is
/// logged and skipped — never fatal, and the matched VRs still restore.
#[test]
fn unmatched_checkpoint_vr_is_skipped_not_fatal() {
    let path = temp_path("unmatched.ck");
    let mut out = Vec::new();

    let clock_a = ManualClock::new();
    let mut lvrm_a = new_lvrm(clock_a.clone(), restart_config(QueueKind::Lamport));
    let mut host_a = RecordingHost::with_heartbeats();
    lvrm_a.add_vr("deptA", &subnet(), routed_vr("a"), &mut host_a);
    lvrm_a.add_vr("deptB", &[(Ipv4Addr::new(10, 0, 3, 0), 24)], routed_vr("b"), &mut host_a);
    run_traffic(&mut lvrm_a, &clock_a, &mut host_a, 0, 5, &mut out);
    let t_ck = 5 * STEP_NS + STEP_NS;
    assert!(lvrm_a.checkpoint_to(&path, t_ck));
    drop(lvrm_a);

    // The successor only re-registers deptA: deptB's record is orphaned.
    let clock_b = ManualClock::new();
    clock_b.set_ns(t_ck);
    let mut lvrm_b = new_lvrm(clock_b.clone(), restart_config(QueueKind::Lamport));
    let mut host_b = RecordingHost::with_heartbeats();
    lvrm_b.add_vr("deptA", &subnet(), routed_vr("a"), &mut host_b);
    let epoch = lvrm_b.restore_from(&path, &mut host_b).expect("partial match still restores");
    assert_eq!(epoch, 1);

    // deptA still routes in the new epoch.
    lvrm_b.ingress(flow_frame(0), &mut host_b);
    host_b.pump();
    lvrm_b.process_control();
    assert_eq!(lvrm_b.poll_egress(&mut out), 1);

    std::fs::remove_file(&path).ok();
}

/// The periodic path: with `checkpoint_path` configured, the lazy tick
/// writes at the configured cadence and the blob on disk always decodes.
#[test]
fn periodic_checkpoints_ride_the_lazy_tick() {
    let path = temp_path("periodic.ck");
    let mut config = restart_config(QueueKind::Lamport);
    config.checkpoint_path = Some(path.clone());
    config.checkpoint_interval_ns = 1_000_000_000;

    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone(), config);
    let mut host = RecordingHost::with_heartbeats();
    lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

    let mut out = Vec::new();
    run_traffic(&mut lvrm, &clock, &mut host, 0, 50, &mut out); // 5 s

    let writes = lvrm.metrics_snapshot().counter("lvrm_checkpoint_writes_total", &[]).unwrap_or(0);
    assert!(
        (4..=7).contains(&writes),
        "5 s at a 1 s cadence must checkpoint ~5 times, got {writes}"
    );
    let ck = Checkpoint::load(&path).expect("the blob on disk always decodes");
    assert_eq!(ck.epoch, 0);
    std::fs::remove_file(&path).ok();
}

/// Soak: several consecutive restart generations under randomized traffic
/// volumes. Every generation must restore, bump the epoch by one, keep
/// affinity, and keep all identities. Run with `--ignored` (CI soak leg).
#[test]
#[ignore = "soak: run explicitly with --ignored"]
fn chained_restarts_soak() {
    for kind in queue_kinds() {
        for &seed in &[7u64, 42, 1337] {
            let path = temp_path(&format!("soak-{}-{seed}.ck", kind.name()));
            let mut out = Vec::new();
            let mut rng = seed | 1;
            let mut xorshift = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };

            let mut t0 = 0u64;
            let mut prev_frames_in = 0u64;
            let mut slots_prev: Option<Vec<usize>> = None;
            for generation in 0u32..4 {
                let clock = ManualClock::new();
                clock.set_ns(t0);
                let mut lvrm = new_lvrm(clock.clone(), restart_config(kind));
                let mut host = RecordingHost::with_heartbeats();
                let vr = lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

                if generation > 0 {
                    let epoch = lvrm.restore_from(&path, &mut host).expect("soak restore");
                    assert_eq!(epoch, generation, "{kind:?} seed {seed}");
                    assert!(
                        lvrm.stats().frames_in >= prev_frames_in,
                        "{kind:?} seed {seed}: counters must never regress across restarts"
                    );
                }

                let steps = 10 + xorshift() % 30;
                run_traffic(&mut lvrm, &clock, &mut host, t0 + STEP_NS, steps, &mut out);
                assert_identities(&lvrm, &format!("soak gen {generation} {kind:?} seed {seed}"));

                let slots: Vec<usize> =
                    (0..FLOWS).map(|i| probe_slot(&mut lvrm, &mut host, vr, i, &mut out)).collect();
                if let Some(prev) = &slots_prev {
                    assert_eq!(
                        prev, &slots,
                        "{kind:?} seed {seed} gen {generation}: affinity drifted"
                    );
                }
                slots_prev = Some(slots);

                t0 += (steps + 2) * STEP_NS;
                assert!(lvrm.checkpoint_to(&path, t0), "soak checkpoint");
                prev_frames_in = lvrm.stats().frames_in;
            }
            std::fs::remove_file(&path).ok();
        }
    }
}
