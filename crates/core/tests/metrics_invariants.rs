//! Invariant suite for the observability layer: every [`MetricsSnapshot`]
//! taken at any instant — mid-burst, mid-fault, mid-drain — must satisfy the
//! frame-conservation identities exactly, for every `QueueKind`, under
//! randomized fault chaos. The registry is the *only* source read here: if a
//! counter moved off the hot path and lost an increment, these identities
//! break.
//!
//! Identities checked on every snapshot:
//!
//! ```text
//! (A) per VR:     frames_in == admitted + shed
//! (B) global:     frames_in == frames_out + unclassified + shed_early
//!                 + dispatch_drops + no_vri_drops + shrink_lost
//!                 + crash_lost + quarantined_drops
//!                 + data_queued + egress_queued
//! (C) per VRI:    Σ dispatched == Σ returned + data_queued + egress_queued
//!                 + reclaimed + queue_lost      (sums include retired series)
//! (D) drops:      dispatch_drops == Σ vri_dispatch_drops (incl. retired)
//! (E) replication: updates_emitted == updates_folded + updates_lost
//! ```
//!
//! (B) holds at every instant because in-flight frames are visible as the
//! `lvrm_data_queued` / `lvrm_egress_queued` gauges; rescued egress is
//! excluded by design (counted in `frames_out` at rescue time, mirrored by
//! the `lvrm_rescued_pending` gauge). (C) counts a reclaimed-then-rehomed
//! frame once in `reclaimed` and once more in the survivor's `dispatched`.
//!
//! Set `LVRM_CHAOS_QUEUE` to one of `lamport` / `fastforward` / `mutex` / `vlink` to
//! restrict the sweep (the CI matrix does this); unset runs all three.

use std::net::Ipv4Addr;

use lvrm_core::{
    AffinityMode, AllocatorKind, CoreId, CoreMap, CoreTopology, DispatchMode, FaultPlan,
    FaultyHost, Lvrm, LvrmConfig, ManualClock, RecordingHost,
};
use lvrm_ipc::QueueKind;
use lvrm_metrics::MetricsSnapshot;
use lvrm_net::{Frame, FrameBuilder};
use lvrm_router::VirtualRouter;
use proptest::prelude::*;

const STEPS: u64 = if cfg!(miri) { 12 } else { 40 };
const CASES: u32 = if cfg!(miri) { 2 } else { 8 };

fn queue_kinds() -> Vec<QueueKind> {
    match std::env::var("LVRM_CHAOS_QUEUE") {
        Ok(want) => vec![want.parse::<QueueKind>().expect("LVRM_CHAOS_QUEUE")],
        Err(_) => QueueKind::ALL.to_vec(),
    }
}

fn chaos_config(kind: QueueKind) -> LvrmConfig {
    LvrmConfig {
        queue_kind: kind,
        allocator: AllocatorKind::Fixed { cores: 2 },
        supervision: true,
        ..Default::default()
    }
}

fn new_lvrm(clock: ManualClock, config: LvrmConfig) -> Lvrm<ManualClock> {
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    Lvrm::new(config, cores, clock)
}

/// All-forwarding router: every admitted frame must come back out.
fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new(name, routes))
}

fn frame(subnet_c: u8, last: u8) -> Frame {
    FrameBuilder::new(Ipv4Addr::new(10, 0, subnet_c, last), Ipv4Addr::new(10, 0, 2, 1)).udp(
        1,
        2,
        &[],
    )
}

/// Counter with no labels, defaulting to 0 so a never-touched family still
/// participates in the identity.
fn c(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counter(name, &[]).unwrap_or(0)
}

fn g(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.gauge(name, &[]).unwrap_or(0.0).round() as u64
}

/// Assert identities (A)–(D) on one snapshot.
fn assert_snapshot_invariants(snap: &MetricsSnapshot, ctx: &str) {
    // (B) global conservation, instantaneous.
    let frames_in = c(snap, "lvrm_frames_in_total");
    let accounted = c(snap, "lvrm_frames_out_total")
        + c(snap, "lvrm_unclassified_total")
        + c(snap, "lvrm_shed_early_total")
        + c(snap, "lvrm_dispatch_drops_total")
        + c(snap, "lvrm_no_vri_drops_total")
        + c(snap, "lvrm_shrink_lost_total")
        + c(snap, "lvrm_crash_lost_total")
        + c(snap, "lvrm_quarantined_drops_total")
        + g(snap, "lvrm_data_queued")
        + g(snap, "lvrm_egress_queued");
    assert_eq!(frames_in, accounted, "(B) global conservation violated {ctx}");

    // (A) per-VR admission, series by series.
    if let Some(fam) = snap.family("lvrm_vr_frames_in_total") {
        for series in &fam.series {
            let labels: Vec<(&str, &str)> =
                series.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            let vr_in = series.as_counter().expect("counter family");
            let admitted = snap.counter("lvrm_vr_admitted_total", &labels).unwrap_or(0);
            let shed = snap.counter("lvrm_vr_shed_total", &labels).unwrap_or(0);
            assert_eq!(vr_in, admitted + shed, "(A) admission identity for {labels:?} {ctx}");
        }
    }

    // (C) per-VRI dispatch identity over live + draining + retired series.
    let dispatched = snap.counter_sum("lvrm_vri_dispatched_total");
    let returned = snap.counter_sum("lvrm_vri_returned_total");
    assert_eq!(
        dispatched,
        returned
            + g(snap, "lvrm_data_queued")
            + g(snap, "lvrm_egress_queued")
            + c(snap, "lvrm_reclaimed_total")
            + c(snap, "lvrm_queue_lost_total"),
        "(C) dispatch identity violated {ctx}"
    );

    // (D) dispatch drops: aggregate equals the per-VRI family sum (retired
    // series stay frozen in the family, so no drop ever leaves the sum).
    assert_eq!(
        c(snap, "lvrm_dispatch_drops_total"),
        snap.counter_sum("lvrm_vri_dispatch_drops_total"),
        "(D) drop identity violated {ctx}"
    );

    // (E) replication: every state-update record accepted for fan-out is
    // either folded into a sibling replica or lost to a full/defunct queue.
    // Exact even when no VR runs replicated (all three stay at zero).
    assert_eq!(
        c(snap, "lvrm_repl_updates_emitted_total"),
        c(snap, "lvrm_repl_updates_folded_total") + c(snap, "lvrm_repl_updates_lost_total"),
        "(E) replication identity violated {ctx}"
    );
}

/// Drive one randomized fault storm against one queue kind, snapshotting
/// after every phase of every step.
fn storm(kind: QueueKind, seed: u64) {
    let horizon = STEPS * 100_000_000;
    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
    let plan = FaultPlan::randomized(seed, horizon, 6, 8);
    let mut host = FaultyHost::new(RecordingHost::with_heartbeats(), plan);
    let a = lvrm.add_vr("deptA", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("a"), &mut host);
    let b = lvrm.add_vr("deptB", &[(Ipv4Addr::new(10, 0, 3, 0), 24)], routed_vr("b"), &mut host);
    // deptB runs replicated: its VRIs ledger every serviced frame and flush
    // LVSU batches upstream, so identity (E) sees real fan-out under chaos
    // (relays to crashed/stalled siblings land in `updates_lost`).
    host.inner.replicate = true;
    lvrm.set_vr_dispatch(b, DispatchMode::Replicated);

    // Deterministic per-seed traffic shape (splitmix-style mixer).
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        rng ^= rng >> 30;
        rng = rng.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        rng ^= rng >> 27;
        rng
    };

    let mut out = Vec::new();
    for step in 0..=STEPS {
        let t = step * 100_000_000;
        clock.set_ns(t);
        let ctx = format!("(kind {kind:?}, seed {seed}, step {step})");

        // A burst of mixed traffic: both VRs plus some unclassified.
        let burst_len = (next() % 48) as usize;
        let mut burst: Vec<Frame> = (0..burst_len)
            .map(|_| match next() % 5 {
                0 | 1 => frame(1, (next() % 200) as u8),
                2 | 3 => frame(3, (next() % 200) as u8),
                _ => frame(9, 1), // 10.0.9.x matches no VR
            })
            .collect();
        lvrm.ingress_batch(&mut burst, &mut host);
        // Mid-step: dispatched frames sit in data queues, visible as gauges.
        assert_snapshot_invariants(&lvrm.metrics_snapshot(), &format!("after ingress {ctx}"));

        host.apply(t);
        host.inner.pump();
        lvrm.process_control();
        lvrm.maybe_reallocate(t, &mut host);
        // Egress is collected every step so the test host's bounded egress
        // queues never overflow (a full egress queue drops silently in the
        // vehicle, which no monitor-side counter can see).
        lvrm.poll_egress(&mut out);
        assert_snapshot_invariants(&lvrm.metrics_snapshot(), &format!("after step {ctx}"));
    }

    // Settle: pump/relay/collect until nothing moves, then the queues must
    // be empty and the classic (drained) identity must hold exactly.
    loop {
        let processed = host.inner.pump();
        lvrm.process_control();
        let egress = lvrm.poll_egress(&mut out);
        if processed == 0 && egress == 0 {
            break;
        }
    }
    let snap = lvrm.metrics_snapshot();
    let ctx = format!("(kind {kind:?}, seed {seed}, settled)");
    assert_snapshot_invariants(&snap, &ctx);
    assert_eq!(g(&snap, "lvrm_egress_queued"), 0, "egress drained {ctx}");

    // The snapshot's per-VR counters agree with the monitor's own view.
    let (a_in, a_out) = lvrm.vr_frame_counts(a);
    let (b_in, b_out) = lvrm.vr_frame_counts(b);
    assert_eq!(snap.counter("lvrm_vr_frames_in_total", &[("vr", "deptA")]), Some(a_in), "{ctx}");
    assert_eq!(snap.counter("lvrm_vr_frames_out_total", &[("vr", "deptA")]), Some(a_out), "{ctx}");
    assert_eq!(snap.counter("lvrm_vr_frames_in_total", &[("vr", "deptB")]), Some(b_in), "{ctx}");
    assert_eq!(snap.counter("lvrm_vr_frames_out_total", &[("vr", "deptB")]), Some(b_out), "{ctx}");

    // The stats() view and the snapshot must be the same numbers: both read
    // the same registry handles.
    let s = lvrm.stats();
    assert_eq!(s.frames_in, c(&snap, "lvrm_frames_in_total"), "{ctx}");
    assert_eq!(s.frames_out, c(&snap, "lvrm_frames_out_total"), "{ctx}");
    assert_eq!(s.vri_deaths, c(&snap, "lvrm_vri_deaths_total"), "{ctx}");
    assert_eq!(s.respawns, c(&snap, "lvrm_respawns_total"), "{ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Randomized chaos storms: every snapshot at every instant satisfies
    /// (A)–(D), for every queue kind in the sweep.
    #[test]
    fn snapshot_invariants_hold_under_chaos(seed in any::<u64>()) {
        for kind in queue_kinds() {
            storm(kind, seed);
        }
    }
}

/// Pinned regression seeds (cheap, always run, no proptest indirection).
#[test]
fn snapshot_invariants_hold_for_pinned_seeds() {
    for kind in queue_kinds() {
        for seed in [7, 42, 1337] {
            storm(kind, seed);
        }
    }
}

/// Supervision events make it into the registry event log with monotonic
/// timestamps, alongside the structural vr-added / vr-alloc entries.
#[test]
fn event_log_records_lifecycle_with_monotonic_timestamps() {
    for kind in queue_kinds() {
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
        let plan = FaultPlan::new().crash_at(2_000_000_000, 0);
        let mut host = FaultyHost::new(RecordingHost::with_heartbeats(), plan);
        let _ =
            lvrm.add_vr("deptA", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("a"), &mut host);
        let mut out = Vec::new();
        for step in 0..=40u64 {
            let t = step * 100_000_000;
            clock.set_ns(t);
            lvrm.ingress(frame(1, (step % 200) as u8), &mut host);
            host.apply(t);
            host.inner.pump();
            lvrm.process_control();
            lvrm.maybe_reallocate(t, &mut host);
            lvrm.poll_egress(&mut out);
        }
        let events = lvrm.metrics().events();
        let texts: Vec<&str> = events.iter().map(|e| e.text.as_str()).collect();
        assert!(
            texts.iter().any(|t| t.starts_with("vr-added vr=deptA")),
            "{kind:?}: missing vr-added in {texts:?}"
        );
        assert!(
            texts.iter().any(|t| t.starts_with("vri-died vr=deptA")),
            "{kind:?}: missing vri-died in {texts:?}"
        );
        assert!(
            texts.iter().any(|t| t.starts_with("vri-respawned vr=deptA")),
            "{kind:?}: missing vri-respawned in {texts:?}"
        );
        assert!(
            events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "{kind:?}: event timestamps must be monotonic"
        );
    }
}
