//! Overload control & graceful degradation: watermark pressure, fair
//! weighted shedding, the control-plane starvation guard, hitless drain on
//! shrink, and clean shutdown — all against the manual clock, no sleeps.
//!
//! Every test that finishes with drained queues asserts the conservation
//! identity:
//!
//! ```text
//! frames_in == frames_out + unclassified + dispatch_drops + no_vri_drops
//!              + shrink_lost + crash_lost + quarantined_drops + shed_early
//! ```
//!
//! The `overload_soak` storm (release CI soak leg; `-- --ignored`) sweeps
//! every `QueueKind` — set `LVRM_CHAOS_QUEUE` to one of `lamport` /
//! `fastforward` / `mutex` to restrict it, as the CI matrix does.

use std::net::Ipv4Addr;

use lvrm_core::alloc::AllocDecision;
use lvrm_core::{
    AffinityMode, AllocatorKind, Clock, CoreId, CoreMap, CoreTopology, Lvrm, LvrmConfig, LvrmStats,
    ManualClock, RecordingHost, VriId,
};
use lvrm_ipc::channels::ControlEvent;
use lvrm_ipc::{PressureLevel, QueueKind};
use lvrm_net::{Frame, FrameBuilder};
use lvrm_router::VirtualRouter;

const SEEDS: &[u64] = &[7, 42, 1337];

fn queue_kinds() -> Vec<QueueKind> {
    match std::env::var("LVRM_CHAOS_QUEUE") {
        Ok(want) => vec![want.parse::<QueueKind>().expect("LVRM_CHAOS_QUEUE")],
        Err(_) => QueueKind::ALL.to_vec(),
    }
}

fn new_lvrm(clock: ManualClock, config: LvrmConfig) -> Lvrm<ManualClock> {
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    Lvrm::new(config, cores, clock)
}

/// Every classified frame must come back out, so the VR routes everything.
fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new(name, routes))
}

fn frame_from(src: [u8; 4]) -> Frame {
    FrameBuilder::new(Ipv4Addr::from(src), Ipv4Addr::new(10, 0, 2, 1)).udp(1, 2, &[])
}

fn burst_from(subnet_third: u8, n: usize) -> Vec<Frame> {
    (0..n).map(|i| frame_from([10, 0, subnet_third, (i % 250) as u8 + 1])).collect()
}

fn assert_conserved(s: &LvrmStats) {
    assert_eq!(
        s.frames_in,
        s.frames_out
            + s.unclassified
            + s.dispatch_drops
            + s.no_vri_drops
            + s.shrink_lost
            + s.crash_lost
            + s.quarantined_drops
            + s.shed_early,
        "conservation identity violated: {s:?}"
    );
}

fn assert_drop_identity(lvrm: &Lvrm<ManualClock>) {
    let adapters: u64 =
        lvrm.snapshot().iter().flat_map(|vr| vr.vris.clone()).map(|v| v.dispatch_drops).sum();
    assert_eq!(
        lvrm.stats().dispatch_drops,
        adapters + lvrm.stats().retired_dispatch_drops,
        "dispatch_drops must equal adapter sum ({adapters}) + retired ({}): {:?}",
        lvrm.stats().retired_dispatch_drops,
        lvrm.stats()
    );
}

/// Pump/relay/collect until nothing moves (no simulated time advances).
fn drain(lvrm: &mut Lvrm<ManualClock>, host: &mut RecordingHost, out: &mut Vec<Frame>) {
    loop {
        let processed = host.pump();
        lvrm.process_control();
        let egress = lvrm.poll_egress(out);
        if processed == 0 && egress == 0 {
            break;
        }
    }
}

/// Push one application-level control event from `src` into its endpoint's
/// outgoing control queue, addressed to `dst`.
fn send_ctrl(host: &mut RecordingHost, src: VriId, dst: VriId) -> bool {
    let Some((_, endpoint, _)) = host.endpoints.iter_mut().find(|(id, _, _)| *id == src) else {
        return false;
    };
    endpoint.ctrl_tx.try_send(ControlEvent::new(src.0, dst.0, b"app-event".to_vec())).is_ok()
}

// ---------------------------------------------------------------------------
// Weighted fair shedding
// ---------------------------------------------------------------------------

/// Two VRs, weights 3:1, tiny queues: once overloaded, each VR's per-burst
/// admission quota is exactly `batch_size × weight / Σ weights` (12 and 4
/// of a 16-frame burst), and the per-VR admission counters reconcile with
/// the aggregate and with the conservation identity.
#[test]
fn overloaded_vrs_are_held_to_their_weighted_quota() {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        data_queue_capacity: 16,
        batch_size: 16,
        overload_shedding: true,
        allocator: AllocatorKind::Fixed { cores: 1 },
        ..Default::default()
    };
    let mut lvrm = new_lvrm(clock, config);
    let mut host = RecordingHost::default();
    let a = lvrm.add_vr("a", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("a"), &mut host);
    let b = lvrm.add_vr("b", &[(Ipv4Addr::new(10, 0, 3, 0), 24)], routed_vr("b"), &mut host);
    lvrm.set_vr_weight(a, 3.0);
    lvrm.set_vr_weight(b, 1.0);

    // Burst 1 per VR: queues are empty, pressure Normal, everything admits.
    lvrm.ingress_batch(&mut burst_from(1, 16), &mut host);
    lvrm.ingress_batch(&mut burst_from(3, 16), &mut host);
    assert_eq!(lvrm.vr_pressure(a), PressureLevel::Normal);
    assert_eq!(lvrm.vr_admission_counts(a), (16, 0));
    assert_eq!(lvrm.vr_admission_counts(b), (16, 0));
    assert_eq!(lvrm.stats().shed_early, 0);

    // Bursts 2 and 3: nothing was pumped, so every data queue sits at its
    // high watermark and both VRs are Overloaded. Quotas: 16×3/4 = 12 for
    // `a`, 16×1/4 = 4 for `b`, deterministic per burst.
    for _ in 0..2 {
        lvrm.ingress_batch(&mut burst_from(1, 16), &mut host);
        lvrm.ingress_batch(&mut burst_from(3, 16), &mut host);
    }
    assert_eq!(lvrm.vr_pressure(a), PressureLevel::Overloaded);
    assert_eq!(lvrm.vr_pressure(b), PressureLevel::Overloaded);
    assert_eq!(lvrm.vr_admission_counts(a), (16 + 12 + 12, 4 + 4), "weight-3 quota is 12 of 16");
    assert_eq!(lvrm.vr_admission_counts(b), (16 + 4 + 4, 12 + 12), "weight-1 quota is 4 of 16");

    // Per-VR shed sums to the aggregate, and frames_in == admitted + shed.
    let snaps = lvrm.snapshot();
    let shed_sum: u64 = snaps.iter().map(|v| v.shed).sum();
    assert_eq!(shed_sum, lvrm.stats().shed_early);
    for v in &snaps {
        assert_eq!(v.frames_in, v.admitted + v.shed, "per-VR admission identity: {v}");
    }

    // Draining the queues recovers Normal (hysteresis releases below the
    // low watermark) and the books balance exactly.
    let mut out = Vec::new();
    drain(&mut lvrm, &mut host, &mut out);
    lvrm.ingress_batch(&mut burst_from(1, 1), &mut host);
    assert_eq!(lvrm.vr_pressure(a), PressureLevel::Normal, "drained VR recovers");
    drain(&mut lvrm, &mut host, &mut out);
    assert_conserved(&lvrm.stats());
    assert_drop_identity(&lvrm);
}

/// With shedding off (the default), the same overload degrades to pure
/// tail-drop: nothing is shed, losses land in `dispatch_drops` instead.
#[test]
fn shedding_off_degrades_to_tail_drop() {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        data_queue_capacity: 16,
        batch_size: 16,
        allocator: AllocatorKind::Fixed { cores: 1 },
        ..Default::default()
    };
    assert!(!config.overload_shedding, "shedding is opt-in");
    let mut lvrm = new_lvrm(clock, config);
    let mut host = RecordingHost::default();
    let a = lvrm.add_vr("a", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("a"), &mut host);
    for _ in 0..3 {
        lvrm.ingress_batch(&mut burst_from(1, 16), &mut host);
    }
    // The pressure signal still reports the overload even when unused.
    assert_eq!(lvrm.vr_pressure(a), PressureLevel::Overloaded);
    assert_eq!(lvrm.stats().shed_early, 0);
    assert_eq!(lvrm.vr_admission_counts(a), (48, 0));
    // With the one VRI's queue full the balancer has no valid target, so the
    // excess tail-drops as `no_vri_drops` (a partially-full fleet would show
    // `dispatch_drops` instead) — either way, a named counter, not silence.
    let tail_dropped = lvrm.stats().dispatch_drops + lvrm.stats().no_vri_drops;
    assert!(tail_dropped > 0, "overload tail-drops: {:?}", lvrm.stats());
    let mut out = Vec::new();
    drain(&mut lvrm, &mut host, &mut out);
    assert_conserved(&lvrm.stats());
}

// ---------------------------------------------------------------------------
// Control-plane starvation guard & drop accounting
// ---------------------------------------------------------------------------

/// A saturated ingress path must not defer control relay forever: after
/// `ctrl_starvation_bursts` data bursts without a relay pass, `ingress_batch`
/// runs `process_control` itself — and the bound resets afterwards.
#[test]
fn starvation_guard_bounds_control_relay_deferral() {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        allocator: AllocatorKind::Fixed { cores: 2 },
        ctrl_starvation_bursts: 4,
        ..Default::default()
    };
    let mut lvrm = new_lvrm(clock, config);
    let mut host = RecordingHost::default();
    lvrm.add_vr("a", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("a"), &mut host);
    let (src, dst) = (host.endpoints[0].0, host.endpoints[1].0);

    for round in 1..=2u64 {
        assert!(send_ctrl(&mut host, src, dst));
        // Three bursts: below the bound, the event stays parked.
        for _ in 0..3 {
            lvrm.ingress(frame_from([10, 0, 1, 1]), &mut host);
        }
        assert_eq!(lvrm.stats().control_relayed, round - 1, "relay deferred below the bound");
        // The fourth consecutive burst trips the guard.
        lvrm.ingress(frame_from([10, 0, 1, 1]), &mut host);
        assert_eq!(lvrm.stats().control_relayed, round, "burst {round}×4 must force a relay pass");
    }
    assert_eq!(lvrm.stats().control_drops, 0);
}

/// Control drops reconcile: every event handed to the monitor is either
/// relayed or counted in `control_drops`, with a full destination queue as
/// the drop reason.
#[test]
fn control_drops_reconcile_against_emitted_events() {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        allocator: AllocatorKind::Fixed { cores: 2 },
        ctrl_queue_capacity: 8,
        ..Default::default()
    };
    let mut lvrm = new_lvrm(clock, config);
    let mut host = RecordingHost::default();
    lvrm.add_vr("a", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("a"), &mut host);
    let (src, dst) = (host.endpoints[0].0, host.endpoints[1].0);

    // Three rounds of 8; the destination VRI never services its control
    // queue, so round 1 fills it and rounds 2-3 drop at relay time.
    let mut emitted = 0u64;
    for _ in 0..3 {
        for _ in 0..8 {
            assert!(send_ctrl(&mut host, src, dst), "source control queue must hold a round");
            emitted += 1;
        }
        lvrm.process_control();
    }
    let s = &lvrm.stats();
    assert_eq!(emitted, 24);
    assert_eq!(s.control_relayed, 8, "exactly one destination queue's worth relays");
    assert_eq!(s.control_drops, 16, "the rest drop against the full queue");
    assert_eq!(s.control_relayed + s.control_drops, emitted, "no event vanishes");

    // An unknown destination is also a counted drop, not a panic.
    assert!(send_ctrl(&mut host, src, VriId(9999)));
    lvrm.process_control();
    assert_eq!(lvrm.stats().control_drops, 17);
}

// ---------------------------------------------------------------------------
// Hitless drain on shrink
// ---------------------------------------------------------------------------

/// Drive a dynamic VR up under load, then idle it down. The shrink victim
/// leaves the balance set at once but is NOT killed: it keeps servicing its
/// parked frames and is only retired once its queue empties — `shrink_lost`
/// stays zero and every frame comes out.
#[test]
fn shrink_drains_hitlessly_with_zero_loss() {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        allocator: AllocatorKind::DynamicFixed { per_core_rate: 1000.0 },
        ..Default::default()
    };
    let mut lvrm = new_lvrm(clock.clone(), config);
    let mut host = RecordingHost::default();
    let mut out = Vec::new();
    let vr = lvrm.add_vr("a", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("a"), &mut host);

    // Grow: ~3000 fps for 3 simulated seconds, serviced and collected.
    let mut now = 0u64;
    for _ in 0..9000 {
        now += 333_333;
        clock.set_ns(now);
        lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        host.pump();
        lvrm.poll_egress(&mut out);
    }
    let peak = lvrm.vri_count(vr);
    assert!(peak >= 3, "load must grow the VR first, got {peak}");

    // Idle down WITHOUT pumping: arriving frames park in the queues, so the
    // shrink victim has work left when the allocator lets it go.
    let mut observed_drain = false;
    for _ in 0..60 {
        now += 100_000_000;
        clock.set_ns(now);
        lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        if lvrm.vr_draining_count(vr) == 1 {
            observed_drain = true;
            break;
        }
    }
    assert!(observed_drain, "idling must put a shrink victim into the drain state");
    assert!(lvrm.vri_count(vr) < peak, "the victim left the balance set");
    assert!(host.killed.is_empty(), "hitless: nothing killed while draining");
    let draining: Vec<_> =
        lvrm.snapshot().iter().flat_map(|v| v.vris.clone()).filter(|v| v.draining).collect();
    assert_eq!(draining.len(), 1, "snapshot flags exactly the draining VRI");
    assert!(
        lvrm.realloc_log.iter().any(|e| e.decision == AllocDecision::Shrink),
        "the shrink decision is logged"
    );

    // The victim's vehicle is still live: pumping empties its queue, and the
    // next sweep retires it with nothing left to lose.
    host.pump();
    now += 1_000_000;
    clock.set_ns(now);
    lvrm.poll_drains(now, &mut host);
    assert_eq!(lvrm.vr_draining_count(vr), 0, "drained victim retires");
    assert_eq!(host.killed.len(), 1, "retirement is the only kill");
    assert_eq!(lvrm.stats().shrink_lost, 0, "happy-path drain loses nothing: {:?}", lvrm.stats());

    drain(&mut lvrm, &mut host, &mut out);
    assert_conserved(&lvrm.stats());
    assert_drop_identity(&lvrm);
    assert_eq!(lvrm.stats().frames_in, lvrm.stats().frames_out, "every frame forwarded");
}

/// A wedged shrink victim cannot drain; the deadline bounds how long it may
/// squat. At expiry it is forcibly retired, its parked frames are reclaimed
/// through the reaped endpoint and re-homed to the survivors — still with
/// zero `shrink_lost`, because the host could hand the endpoint back.
#[test]
fn stalled_drain_is_bounded_by_the_deadline_and_rehomes() {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        allocator: AllocatorKind::DynamicFixed { per_core_rate: 1000.0 },
        ..Default::default()
    };
    let deadline_ns = config.drain_deadline_ns;
    let mut lvrm = new_lvrm(clock.clone(), config);
    let mut host = RecordingHost::default();
    let mut out = Vec::new();
    let vr = lvrm.add_vr("a", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("a"), &mut host);

    let mut now = 0u64;
    for _ in 0..9000 {
        now += 333_333;
        clock.set_ns(now);
        lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        host.pump();
        lvrm.poll_egress(&mut out);
    }
    assert!(lvrm.vri_count(vr) >= 2);

    // Wedge the newest VRI (the next shrink victim) and park a burst across
    // the VR — JSQ spreads it, so the victim holds some of it.
    let victim = host.endpoints.last().expect("live endpoints").0;
    host.stalled.insert(victim);
    now += 1_000_000;
    clock.set_ns(now);
    lvrm.ingress_batch(&mut burst_from(1, 32), &mut host);

    let mut observed_drain = false;
    for _ in 0..60 {
        now += 100_000_000;
        clock.set_ns(now);
        lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        if lvrm.vr_draining_count(vr) == 1 {
            observed_drain = true;
            break;
        }
    }
    assert!(observed_drain, "idling must start a drain");
    let parked = lvrm
        .snapshot()
        .iter()
        .flat_map(|v| v.vris.clone())
        .find(|v| v.draining)
        .expect("draining snapshot")
        .queue_len;
    assert!(parked > 0, "the stalled victim must hold parked frames");
    assert!(host.killed.is_empty());

    // Within the deadline the wedged victim is left alone...
    lvrm.poll_drains(now, &mut host);
    assert_eq!(lvrm.vr_draining_count(vr), 1, "no retirement before the deadline");

    // ...but not past it.
    now += deadline_ns + 100_000_000;
    clock.set_ns(now);
    lvrm.poll_drains(now, &mut host);
    assert_eq!(lvrm.vr_draining_count(vr), 0);
    assert!(host.killed.iter().any(|(_, id)| *id == victim), "deadline retires the victim");
    assert_eq!(lvrm.stats().shrink_lost, 0, "reaped endpoint loses nothing: {:?}", lvrm.stats());
    assert!(
        lvrm.stats().redispatched >= parked as u64,
        "parked frames re-home to survivors: {:?}",
        lvrm.stats()
    );

    drain(&mut lvrm, &mut host, &mut out);
    assert_conserved(&lvrm.stats());
    assert_drop_identity(&lvrm);
}

// ---------------------------------------------------------------------------
// Clean shutdown
// ---------------------------------------------------------------------------

/// Shutdown is the drain machinery applied to everything at once: in-flight
/// frames still come out (including egress rescued at retirement), late
/// arrivals are quiesced into `shed_early`, and the final books balance
/// exactly — the property `lvrmd` prints on SIGTERM.
#[test]
fn shutdown_drains_everything_and_conserves() {
    let clock = ManualClock::new();
    let config = LvrmConfig { allocator: AllocatorKind::Fixed { cores: 2 }, ..Default::default() };
    let mut lvrm = new_lvrm(clock.clone(), config);
    let mut host = RecordingHost::default();
    lvrm.add_vr("a", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("a"), &mut host);

    lvrm.ingress_batch(&mut burst_from(1, 100), &mut host);
    host.pump(); // forwarded frames now sit in the egress queues, uncollected

    let deadline = clock.now_ns() + 1_000_000_000;
    let mut rounds = 0;
    while !lvrm.shutdown(deadline, &mut host) {
        host.pump();
        rounds += 1;
        assert!(rounds < 100, "shutdown must converge");
    }
    assert!(lvrm.shutdown_complete());
    assert!(lvrm.is_shutting_down());
    assert_eq!(host.killed.len(), 2, "every VRI retired");
    assert_eq!(lvrm.stats().shrink_lost, 0, "drained shutdown loses nothing: {:?}", lvrm.stats());

    // Rescued egress frames are delivered by the next collection pass.
    let mut out = Vec::new();
    lvrm.poll_egress(&mut out);
    assert_eq!(out.len(), 100, "every forwarded frame is recovered");
    assert_eq!(lvrm.stats().frames_out, 100);

    // Late arrivals are quiesced, counted, and conserved.
    lvrm.ingress_batch(&mut burst_from(1, 3), &mut host);
    assert_eq!(lvrm.stats().shed_early, 3, "post-shutdown ingress is shed, not lost");
    assert_conserved(&lvrm.stats());
    assert_drop_identity(&lvrm);

    // Idempotent: a second call is a completed no-op.
    assert!(lvrm.shutdown(deadline, &mut host));
}

// ---------------------------------------------------------------------------
// Randomized overload storm (release soak; CI runs with -- --ignored)
// ---------------------------------------------------------------------------

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// One seeded storm: bursty two-VR overload with weighted shedding, random
/// pump/collect/control interleavings, dynamic grow/shrink (so drains fire
/// mid-storm), ended by a deadline-bounded shutdown. Terminates with the
/// exact conservation and drop identities. Returns the frames shed.
fn storm(kind: QueueKind, seed: u64) -> u64 {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        queue_kind: kind,
        data_queue_capacity: 64,
        ctrl_queue_capacity: 8,
        batch_size: 8,
        overload_shedding: true,
        allocator: AllocatorKind::DynamicFixed { per_core_rate: 50_000.0 },
        ..Default::default()
    };
    config.validate().expect("storm config is valid");
    let mut lvrm = new_lvrm(clock.clone(), config);
    let mut host = RecordingHost::default();
    let mut out = Vec::new();
    let a = lvrm.add_vr("hot", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("hot"), &mut host);
    let b = lvrm.add_vr("cold", &[(Ipv4Addr::new(10, 0, 3, 0), 24)], routed_vr("cold"), &mut host);
    lvrm.set_vr_weight(a, 1.0);
    lvrm.set_vr_weight(b, 3.0);

    let mut rng = seed;
    let mut now = 0u64;
    for _ in 0..1500 {
        now += 200_000 + lcg(&mut rng) % 2_000_000;
        clock.set_ns(now);
        let third = if lcg(&mut rng).is_multiple_of(4) { 3 } else { 1 }; // hot VR dominates
        let n = (lcg(&mut rng) % 64) as usize;
        if n > 0 {
            lvrm.ingress_batch(&mut burst_from(third, n), &mut host);
        }
        if lcg(&mut rng).is_multiple_of(16) {
            lvrm.ingress(frame_from([192, 168, 0, 1]), &mut host); // unclassified
        }
        if lcg(&mut rng).is_multiple_of(2) {
            // Pump and collect as a pair: the recording host's egress queues
            // are only `data_queue_capacity` deep, so servicing a full
            // inbound queue into an uncollected outbound one would overflow
            // silently inside the host — a harness artifact, not a monitor
            // loss. Collecting right after keeps them empty at pump time.
            host.pump();
            lvrm.poll_egress(&mut out);
        }
        if lcg(&mut rng).is_multiple_of(8) && host.endpoints.len() >= 2 {
            let i = (lcg(&mut rng) as usize) % host.endpoints.len();
            let j = (lcg(&mut rng) as usize) % host.endpoints.len();
            let (src, dst) = (host.endpoints[i].0, host.endpoints[j].0);
            send_ctrl(&mut host, src, dst);
        }
        if lcg(&mut rng).is_multiple_of(16) {
            lvrm.process_control();
        }
    }

    // Deadline-bounded shutdown: pump while draining; once the clock passes
    // the deadline, wedge-proof forcible retirement finishes the job.
    let deadline = now + 5_000_000;
    let mut rounds = 0;
    loop {
        now += 1_000_000;
        clock.set_ns(now);
        if lvrm.shutdown(deadline, &mut host) {
            break;
        }
        host.pump();
        lvrm.poll_egress(&mut out);
        rounds += 1;
        assert!(rounds < 64, "shutdown must terminate via the deadline");
    }
    drain(&mut lvrm, &mut host, &mut out);

    assert_conserved(&lvrm.stats());
    assert_drop_identity(&lvrm);
    for v in &lvrm.snapshot() {
        assert_eq!(v.frames_in, v.admitted + v.shed, "per-VR admission identity: {v}");
        assert!(v.vris.is_empty(), "no VRI survives shutdown: {v}");
    }
    let relayed = lvrm.stats().control_relayed + lvrm.stats().control_drops;
    assert!(relayed > 0 || lvrm.stats().frames_in == 0, "control plane exercised");
    lvrm.stats().shed_early
}

#[test]
#[ignore = "release soak leg: cargo test --release -p lvrm-core --test overload_control -- --ignored"]
fn overload_soak() {
    let mut total_shed = 0u64;
    for kind in queue_kinds() {
        for &seed in SEEDS {
            total_shed += storm(kind, seed);
        }
    }
    assert!(total_shed > 0, "the storm must provoke weighted shedding somewhere");
}
