//! Active/standby HA acceptance suite (DESIGN.md §13): pair two monitors
//! over an in-process peer link, elect the higher-priority one, stream
//! checkpoint deltas, then kill the master — the standby must promote from
//! its shadow in under a second with flow affinity and all four
//! conservation identities exact. A seeded advert-loss/partition storm must
//! never yield two monitors accepting frames at once.
//!
//! Set `LVRM_CHAOS_QUEUE` to one of `lamport` / `fastforward` / `mutex` /
//! `vlink` to restrict the sweep (the CI matrix does this); unset runs all.

use std::net::Ipv4Addr;

use lvrm_core::{
    AffinityMode, AllocatorKind, ChannelLink, CoreId, CoreMap, CoreTopology, FaultyLink, HaConfig,
    LinkFaultWindow, Lvrm, LvrmConfig, ManualClock, PeerLink, RecordingHost, Role, VrId,
};
use lvrm_ipc::QueueKind;
use lvrm_net::{Frame, FrameBuilder};
use lvrm_router::VirtualRouter;

/// Host-loop cadence: well under the advert interval, so election timers
/// are observed with ~7% granularity.
const STEP_NS: u64 = 10_000_000; // 10 ms
const ADVERT_NS: u64 = 150_000_000; // 150 ms (the HaConfig default)
const DELTA_NS: u64 = 200_000_000; // stream every 200 ms in tests
const FLOWS: usize = 8;

fn queue_kinds() -> Vec<QueueKind> {
    match std::env::var("LVRM_CHAOS_QUEUE") {
        Ok(want) => vec![want.parse::<QueueKind>().expect("LVRM_CHAOS_QUEUE")],
        Err(_) => QueueKind::ALL.to_vec(),
    }
}

fn ha_config(kind: QueueKind, priority: u8, node_id: u64) -> LvrmConfig {
    LvrmConfig {
        queue_kind: kind,
        allocator: AllocatorKind::Fixed { cores: 2 },
        supervision: true,
        flow_based: true,
        ha: Some(HaConfig {
            priority,
            node_id,
            advert_interval_ns: ADVERT_NS,
            delta_interval_ns: DELTA_NS,
            preempt: true,
        }),
        ..Default::default()
    }
}

fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new(name, routes))
}

fn subnet() -> [(Ipv4Addr, u8); 1] {
    [(Ipv4Addr::new(10, 0, 1, 0), 24)]
}

fn flow_frame(i: usize) -> Frame {
    FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 20 + i as u8), Ipv4Addr::new(10, 0, 2, 1)).udp(
        4000 + i as u16,
        80,
        &[],
    )
}

/// One monitor of the pair, with its own clock/host, HA-attached.
struct Node {
    clock: ManualClock,
    lvrm: Lvrm<ManualClock>,
    host: RecordingHost,
    vr: VrId,
}

impl Node {
    fn new(kind: QueueKind, priority: u8, node_id: u64, link: Box<dyn PeerLink>) -> Node {
        let clock = ManualClock::new();
        let cores =
            CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
        let mut lvrm = Lvrm::new(ha_config(kind, priority, node_id), cores, clock.clone());
        let mut host = RecordingHost::with_heartbeats();
        let vr = lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);
        assert!(lvrm.attach_ha(link), "config carries ha, attach must succeed");
        Node { clock, lvrm, host, vr }
    }

    /// One host-loop iteration at absolute time `t`: pump, control, HA
    /// sub-tick (inside `maybe_reallocate`), egress.
    fn step(&mut self, t: u64, out: &mut Vec<Frame>) {
        self.clock.set_ns(t);
        self.host.pump();
        self.lvrm.process_control();
        self.lvrm.maybe_reallocate(t, &mut self.host);
        self.lvrm.poll_egress(out);
    }

    fn accepting(&self) -> bool {
        self.lvrm.ha_accepting()
    }

    fn role(&self) -> Role {
        self.lvrm.ha_role().expect("ha attached")
    }

    fn drain(&mut self, out: &mut Vec<Frame>) {
        loop {
            let processed = self.host.pump();
            self.lvrm.process_control();
            let egress = self.lvrm.poll_egress(out);
            if processed == 0 && egress == 0 {
                break;
            }
        }
    }

    fn probe_slot(&mut self, i: usize, out: &mut Vec<Frame>) -> usize {
        let before = self.lvrm.vri_dispatch_counts(self.vr);
        self.lvrm.ingress(flow_frame(i), &mut self.host);
        self.drain(out);
        let after = self.lvrm.vri_dispatch_counts(self.vr);
        let hits: Vec<usize> = after
            .iter()
            .zip(&before)
            .enumerate()
            .filter(|(_, (a, b))| *a > *b)
            .map(|(slot, _)| slot)
            .collect();
        assert_eq!(hits.len(), 1, "exactly one slot must serve flow {i}, got {hits:?}");
        hits[0]
    }
}

/// All four conservation identities, from the public stats/snapshot
/// surface. Call on a drained monitor.
fn assert_identities(lvrm: &Lvrm<ManualClock>, ctx: &str) {
    let s = lvrm.stats();
    assert_eq!(
        s.frames_in,
        s.frames_out
            + s.unclassified
            + s.dispatch_drops
            + s.no_vri_drops
            + s.shrink_lost
            + s.crash_lost
            + s.quarantined_drops
            + s.shed_early,
        "(1) global conservation violated {ctx}: {s:?}"
    );
    let snap = lvrm.snapshot();
    for vr in &snap {
        assert_eq!(
            vr.frames_in,
            vr.admitted + vr.shed,
            "(2) admission identity violated for {} {ctx}",
            vr.name
        );
    }
    let live_dispatched: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.dispatched).sum();
    let live_returned: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.returned).sum();
    let queued: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.queue_len as u64).sum();
    assert_eq!(
        live_dispatched + s.retired_dispatched,
        live_returned + s.retired_returned + queued + s.reclaimed + s.queue_lost,
        "(3) dispatch identity violated {ctx}: {s:?}"
    );
    let live_drops: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.dispatch_drops).sum();
    assert_eq!(
        s.dispatch_drops,
        live_drops + s.retired_dispatch_drops,
        "(4) drop identity violated {ctx}: {s:?}"
    );
}

/// Step both nodes forward to `t_end`, feeding `flows_per_step` frames to
/// whichever node is accepting, asserting the single-accepting-master
/// invariant at every step. Returns the final time.
fn run_pair(
    a: &mut Node,
    b: &mut Node,
    t_start: u64,
    t_end: u64,
    flows_per_step: usize,
    out: &mut Vec<Frame>,
    ctx: &str,
) -> u64 {
    let mut t = t_start;
    while t < t_end {
        if a.accepting() {
            for i in 0..flows_per_step {
                a.lvrm.ingress(flow_frame(i % FLOWS), &mut a.host);
            }
        } else if b.accepting() {
            for i in 0..flows_per_step {
                b.lvrm.ingress(flow_frame(i % FLOWS), &mut b.host);
            }
        }
        a.step(t, out);
        b.step(t, out);
        assert!(!(a.accepting() && b.accepting()), "{ctx}: dual accepting masters at t={t}");
        t += STEP_NS;
    }
    t
}

/// Step the pair until the higher-priority node owns the dataplane.
fn elect(a: &mut Node, b: &mut Node, out: &mut Vec<Frame>, ctx: &str) -> u64 {
    let mut t = 0;
    for _ in 0..400 {
        a.step(t, out);
        b.step(t, out);
        assert!(!(a.accepting() && b.accepting()), "{ctx}: dual masters during election");
        t += STEP_NS;
        if a.accepting() {
            assert_eq!(a.role(), Role::Master, "{ctx}");
            assert_eq!(b.role(), Role::Backup, "{ctx}");
            return t;
        }
    }
    panic!("{ctx}: no master elected within {} ns", 400 * STEP_NS);
}

/// The headline acceptance: kill the active monitor; the standby must be
/// accepting frames in < 1 s (master-down = 3 adverts + skew, plus one
/// probation advert), with the master's books — all four identities and
/// per-flow affinity — intact on the survivor.
#[test]
fn killed_master_promotes_standby_subsecond_with_exact_books() {
    for kind in queue_kinds() {
        let ctx = format!("{kind:?}");
        let (la, lb) = ChannelLink::pair();
        let mut a = Node::new(kind, 200, 1, Box::new(la));
        let mut b = Node::new(kind, 100, 2, Box::new(lb));
        let mut out = Vec::new();

        let mut t = elect(&mut a, &mut b, &mut out, &ctx);

        // Warm the master: traffic over the flow population, spread across
        // both slots, then drain so the books are quiescent.
        t = run_pair(&mut a, &mut b, t, t + 60 * STEP_NS, FLOWS, &mut out, &ctx);
        a.drain(&mut out);
        let slots_pre: Vec<usize> = (0..FLOWS).map(|i| a.probe_slot(i, &mut out)).collect();
        assert!(
            slots_pre.iter().any(|&s| s != slots_pre[0]),
            "{ctx}: warmup must spread flows over both slots, got {slots_pre:?}"
        );

        // Replication exactness: at a known stream instant the standby's
        // shadow must equal the canonical form of exactly what the master
        // would checkpoint — the delta stream loses nothing.
        t += DELTA_NS + STEP_NS; // guarantee the stream interval elapsed
        a.clock.set_ns(t);
        a.host.pump();
        a.lvrm.process_control();
        let expected = a.lvrm.build_checkpoint(t).canonical();
        a.lvrm.maybe_reallocate(t, &mut a.host); // streams at exactly t
        a.lvrm.poll_egress(&mut out);
        b.step(t, &mut out); // folds the delta (or snapshot), acks
        let shadow = b.lvrm.ha().expect("attached").shadow().expect("{ctx}: shadow baselined");
        assert_eq!(shadow, &expected, "{ctx}: shadow drifted from the master's checkpoint");
        let a_stats = a.lvrm.stats();

        // The kill: the master vanishes mid-epoch (no goodbye advert).
        drop(a);
        let t_kill = t;
        let mut promoted_at = None;
        while t < t_kill + 2_000_000_000 {
            t += STEP_NS;
            b.step(t, &mut out);
            if b.accepting() {
                promoted_at = Some(t);
                break;
            }
        }
        let t_accept = promoted_at.unwrap_or_else(|| panic!("{ctx}: standby never took over"));
        assert!(
            t_accept - t_kill < 1_000_000_000,
            "{ctx}: failover took {} ms, budget is < 1000 ms",
            (t_accept - t_kill) / 1_000_000
        );
        assert_eq!(b.role(), Role::Master, "{ctx}");
        // Term 1 was the initial election (A's timeout-promotion); the
        // takeover is election term 2.
        assert_eq!(b.lvrm.ha().expect("attached").term(), 2, "{ctx}: takeover bumps the term");

        // The survivor's books are the master's books: counters resumed,
        // identities exact, flows pinned to their old slots.
        let s_b = b.lvrm.stats();
        assert_eq!(s_b.frames_in, a_stats.frames_in, "{ctx}: counters resume, not reset");
        assert_eq!(s_b.crash_lost, a_stats.crash_lost, "{ctx}");
        assert_identities(&b.lvrm, &format!("post-promotion {ctx}"));
        let slots_post: Vec<usize> = (0..FLOWS).map(|i| b.probe_slot(i, &mut out)).collect();
        assert_eq!(slots_pre, slots_post, "{ctx}: flow affinity must survive the failover");

        // Fresh traffic accumulates on the inherited baseline and the
        // books stay balanced.
        let before = b.lvrm.stats().frames_in;
        for _ in 0..20 {
            t += STEP_NS;
            for i in 0..FLOWS {
                b.lvrm.ingress(flow_frame(i), &mut b.host);
            }
            b.step(t, &mut out);
        }
        b.drain(&mut out);
        assert!(b.lvrm.stats().frames_in > before, "{ctx}: promoted master serves traffic");
        assert_identities(&b.lvrm, &format!("post-promotion traffic {ctx}"));

        // Failover metrics surfaced.
        b.lvrm.refresh_registry();
        let snap = b.lvrm.metrics_snapshot();
        assert_eq!(snap.gauge("lvrm_ha_role", &[]), Some(1.0), "{ctx}");
        let failover_ns = snap.gauge("lvrm_ha_failover_ns", &[]).unwrap_or(0.0);
        assert!(
            failover_ns > 0.0 && failover_ns < 1e9,
            "{ctx}: lvrm_ha_failover_ns must record the takeover, got {failover_ns}"
        );
    }
}

/// Graceful handoff (SIGUSR1 path): the master resigns with a priority-0
/// advert; the standby takes over after skew — faster than master-down —
/// and at no instant do both accept.
#[test]
fn graceful_handoff_transfers_mastership_without_overlap() {
    for kind in queue_kinds() {
        let ctx = format!("handoff {kind:?}");
        let (la, lb) = ChannelLink::pair();
        let mut a = Node::new(kind, 200, 1, Box::new(la));
        let mut b = Node::new(kind, 100, 2, Box::new(lb));
        let mut out = Vec::new();

        let mut t = elect(&mut a, &mut b, &mut out, &ctx);
        t = run_pair(&mut a, &mut b, t, t + 30 * STEP_NS, FLOWS, &mut out, &ctx);
        a.drain(&mut out);

        let t_handoff = t;
        a.lvrm.ha_mut().expect("attached").request_handoff(t_handoff);
        assert!(!a.accepting(), "{ctx}: resigned master stops accepting at once");
        assert_eq!(a.role(), Role::Draining, "{ctx}");

        let mut took_over = None;
        while t < t_handoff + 1_000_000_000 {
            t += STEP_NS;
            a.step(t, &mut out);
            b.step(t, &mut out);
            assert!(!(a.accepting() && b.accepting()), "{ctx}: overlap during handoff");
            if b.accepting() {
                took_over = Some(t);
                break;
            }
        }
        let t_b = took_over.unwrap_or_else(|| panic!("{ctx}: peer never took over"));
        // Budget: skew of the backup + one probation advert + loop slack.
        let skew = (256 - 100) * ADVERT_NS / 256;
        assert!(
            t_b - t_handoff <= skew + ADVERT_NS + 3 * STEP_NS,
            "{ctx}: handoff took {} ms",
            (t_b - t_handoff) / 1_000_000
        );
        // The resigned master settles back to backup and STAYS there: a
        // manual handoff must be sticky even though A outranks B and
        // preemption is on (1.5 s is well past where preemption would
        // have reclaimed the mastership).
        for _ in 0..150 {
            t += STEP_NS;
            a.step(t, &mut out);
            b.step(t, &mut out);
            assert!(!(a.accepting() && b.accepting()), "{ctx}: overlap after handoff");
        }
        assert_eq!(a.role(), Role::Backup, "{ctx}: drain completes into backup");
        assert!(b.accepting(), "{ctx}: new master keeps the dataplane");

        // But stickiness must not cost liveness: if the new master dies
        // for real, the resigned node still takes back over.
        drop(b);
        let t_kill = t;
        while t < t_kill + 2_000_000_000 && !a.accepting() {
            t += STEP_NS;
            a.step(t, &mut out);
        }
        assert!(a.accepting(), "{ctx}: resigned node must still cover a real death");
        assert!(t - t_kill < 1_000_000_000, "{ctx}: recovery took {} ms", (t - t_kill) / 1_000_000);
    }
}

/// Seeded advert-loss/partition storms (both monitors alive throughout):
/// outage windows are bounded below the master-down interval, so the
/// election must ride them out — never two accepting monitors, and the
/// rightful master still owns the dataplane when the weather clears. Then
/// the master is killed for real and the standby must still take over.
/// Deterministic for each (seed × QueueKind).
#[test]
fn partition_storm_never_yields_two_accepting_masters() {
    for kind in queue_kinds() {
        for &seed in &[7u64, 42, 1337] {
            let ctx = format!("storm {kind:?} seed {seed}");
            // Bounded storm schedule: windows <= 300 ms separated by
            // >= 450 ms of clean air. Worst-case advert silence is then
            // window + one interval ~ 450 ms < master-down (541 ms at
            // priority 100), which is the documented operating envelope
            // of the split-brain guard (DESIGN.md §13).
            let mut rng = seed | 1;
            let mut xorshift = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut windows = Vec::new();
            let mut from = 1_500_000_000u64; // let the election settle first
            for _ in 0..8 {
                let len = 50_000_000 + xorshift() % 250_000_000; // 50..300 ms
                let until = from + len;
                windows.push(match xorshift() % 3 {
                    0 => LinkFaultWindow::partition(from, until),
                    1 => LinkFaultWindow::loss(from, until, 600),
                    _ => LinkFaultWindow::delay(from, until, 30_000_000),
                });
                from = until + 450_000_000 + xorshift() % 200_000_000;
            }
            let horizon = from + 500_000_000;

            let (la, lb) = ChannelLink::pair();
            let fa = FaultyLink::new(la, windows.clone(), seed);
            let fb = FaultyLink::new(lb, windows, seed ^ 0xdead);
            let mut a = Node::new(kind, 200, 1, Box::new(fa));
            let mut b = Node::new(kind, 100, 2, Box::new(fb));
            let mut out = Vec::new();

            let t = elect(&mut a, &mut b, &mut out, &ctx);
            let t = run_pair(&mut a, &mut b, t, horizon, 4, &mut out, &ctx);
            assert!(a.accepting(), "{ctx}: master must hold through the storm");
            assert_eq!(b.role(), Role::Backup, "{ctx}: standby must ride it out");

            // Now a real failure: the master dies. The standby takes over
            // even after all that weather.
            drop(a);
            let mut t2 = t;
            while t2 < t + 2_000_000_000 {
                t2 += STEP_NS;
                b.step(t2, &mut out);
                if b.accepting() {
                    break;
                }
            }
            assert!(b.accepting(), "{ctx}: standby must promote after the real kill");
            assert!(
                t2 - t < 1_000_000_000,
                "{ctx}: post-storm failover took {} ms",
                (t2 - t) / 1_000_000
            );
            b.drain(&mut out);
            assert_identities(&b.lvrm, &ctx);
        }
    }
}

/// Seeded 50% loss on the *state stream only* (HaMsg kind byte at wire
/// offset 5; adverts are kind 0 and sail through): the resync regression
/// below targets the Delta/Snapshot/SyncReq exchange, and dropping
/// adverts too would simply re-test the election envelope.
struct StreamLossLink<L> {
    inner: L,
    from: u64,
    until: u64,
    rng: u64,
}

impl<L> StreamLossLink<L> {
    fn drops(&mut self, now_ns: u64, bytes: &[u8]) -> bool {
        if now_ns < self.from || now_ns >= self.until {
            return false;
        }
        if bytes.len() <= 5 || bytes[5] == 0 {
            return false;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        (self.rng >> 33) % 1000 < 500
    }
}

impl<L: PeerLink> PeerLink for StreamLossLink<L> {
    fn send(&mut self, now_ns: u64, bytes: &[u8]) {
        if !self.drops(now_ns, bytes) {
            self.inner.send(now_ns, bytes);
        }
    }

    fn recv(&mut self, now_ns: u64, out: &mut Vec<Vec<u8>>) {
        self.inner.recv(now_ns, out);
    }
}

/// Wire tap for the resync regression below: counts standby-side SyncReq
/// sends and Snapshot receipts by the HaMsg kind byte (offset 5 on the
/// wire), then forwards to the (lossy) inner link untouched.
struct CountingLink<L> {
    inner: L,
    syncreq_tx: std::sync::Arc<std::sync::atomic::AtomicU64>,
    snapshot_rx: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl<L: PeerLink> PeerLink for CountingLink<L> {
    fn send(&mut self, now_ns: u64, bytes: &[u8]) {
        if bytes.len() > 5 && bytes[5] == 4 {
            self.syncreq_tx.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        self.inner.send(now_ns, bytes);
    }

    fn recv(&mut self, now_ns: u64, out: &mut Vec<Vec<u8>>) {
        let start = out.len();
        self.inner.recv(now_ns, out);
        for msg in &out[start..] {
            if msg.len() > 5 && msg[5] == 3 {
                self.snapshot_rx.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
}

/// SyncReq rate-limit regression: a sustained 50%-loss link gaps the delta
/// stream over and over, but the standby must hold to one in-flight
/// SyncReq per (jittered, exponentially backed-off) interval — so the
/// master re-baselines a handful of times, not once per gapped delta —
/// and the shadow must still converge once the weather clears.
#[test]
fn lossy_link_resync_is_rate_limited_and_still_converges() {
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    for kind in queue_kinds() {
        let ctx = format!("lossy-resync {kind:?}");
        // 50% state-stream loss in both directions for 3 s, starting
        // after election; adverts keep flowing so the election holds.
        let loss_from = 1_500_000_000u64;
        let loss_until = loss_from + 3_000_000_000;

        let syncreq_tx = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let snapshot_rx = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (la, lb) = ChannelLink::pair();
        let fa = StreamLossLink { inner: la, from: loss_from, until: loss_until, rng: 7 | 1 };
        let fb =
            StreamLossLink { inner: lb, from: loss_from, until: loss_until, rng: (7 ^ 0xdead) | 1 };
        let tapped = CountingLink {
            inner: fb,
            syncreq_tx: syncreq_tx.clone(),
            snapshot_rx: snapshot_rx.clone(),
        };
        let mut a = Node::new(kind, 200, 1, Box::new(fa));
        let mut b = Node::new(kind, 100, 2, Box::new(tapped));
        let mut out = Vec::new();

        let t = elect(&mut a, &mut b, &mut out, &ctx);
        let baseline_snapshots = snapshot_rx.load(Ordering::Relaxed);
        // Traffic through the whole loss window, then a quiet settle so
        // the final resync (if any) completes.
        let t = run_pair(&mut a, &mut b, t, loss_until + 1_500_000_000, 4, &mut out, &ctx);
        assert!(a.accepting(), "{ctx}: 50% loss must not cost the mastership");

        // The backoff ladder (advert << streak, capped at 8x, jitter
        // >= 0.75) admits at most ~9 requests over a 3 s outage at a
        // 150 ms advert interval; without the rate limit this is one per
        // gapped delta — dozens. Budget 2x the ladder for re-gaps after
        // partial resyncs.
        let requests = syncreq_tx.load(Ordering::Relaxed);
        assert!(
            requests <= 18,
            "{ctx}: {requests} SyncReqs across one 3 s loss window — rate limit broken"
        );
        let rebaselines = snapshot_rx.load(Ordering::Relaxed) - baseline_snapshots;
        assert!(
            rebaselines <= requests + 1,
            "{ctx}: {rebaselines} snapshot re-baselines for {requests} requests"
        );

        // Convergence: the shadow equals the master's books exactly, so a
        // kill right now promotes with zero divergence.
        a.drain(&mut out);
        let mut t2 = t;
        // One more delta interval of clean air to flush the stream tail.
        while t2 < t + 2 * DELTA_NS {
            t2 += STEP_NS;
            a.step(t2, &mut out);
            b.step(t2, &mut out);
        }
        let mut master_books = a.lvrm.build_checkpoint(t2).canonical();
        let mut shadow = b
            .lvrm
            .ha()
            .expect("attached")
            .shadow()
            .unwrap_or_else(|| panic!("{ctx}: standby never built a shadow"))
            .canonical();
        // The shadow's build stamp is the last stream tick, not "now".
        master_books.ts_ns = 0;
        shadow.ts_ns = 0;
        assert_eq!(master_books, shadow, "{ctx}: shadow must converge after the storm");
        assert_identities(&a.lvrm, &ctx);
        assert_identities(&b.lvrm, &ctx);
    }
}
