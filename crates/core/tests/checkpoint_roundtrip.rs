//! Property tests for the checkpoint wire format (DESIGN.md §10): any
//! checkpoint the monitor can build must round-trip bit-exactly through
//! encode/decode, and *no* byte stream — corrupted, truncated, or outright
//! garbage — may ever panic the decoder or be silently accepted. The final
//! tests close the loop at the monitor level: a rejected checkpoint must
//! leave the monitor cold-started but fully functional, with the rejection
//! visible in `lvrm_checkpoint_rejected_total` and the event stream.

use std::net::Ipv4Addr;

use lvrm_core::{
    AffinityMode, Checkpoint, CoreId, CoreMap, CoreTopology, FlowRecord, Lvrm, LvrmConfig,
    LvrmStats, ManualClock, RecordingHost, VrCheckpoint,
};
use lvrm_net::flow::Protocol;
use lvrm_net::{FlowKey, FrameBuilder};
use proptest::prelude::*;

const CASES: u32 = if cfg!(miri) { 8 } else { 128 };

// ---- strategies --------------------------------------------------------

fn arb_stats() -> impl Strategy<Value = LvrmStats> {
    prop::collection::vec(any::<u64>(), 19..20).prop_map(|v| LvrmStats {
        frames_in: v[0],
        frames_out: v[1],
        unclassified: v[2],
        dispatch_drops: v[3],
        no_vri_drops: v[4],
        shrink_lost: v[5],
        control_relayed: v[6],
        control_drops: v[7],
        redispatched: v[8],
        crash_lost: v[9],
        quarantined_drops: v[10],
        vri_deaths: v[11],
        respawns: v[12],
        retired_dispatch_drops: v[13],
        shed_early: v[14],
        reclaimed: v[15],
        queue_lost: v[16],
        retired_dispatched: v[17],
        retired_returned: v[18],
    })
}

fn arb_flow() -> impl Strategy<Value = FlowRecord> {
    (
        (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>()),
        (0u32..16, any::<u64>()),
    )
        .prop_map(|((src, dst, src_port, dst_port, proto), (slot, last_seen_ns))| FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                src_port,
                dst_port,
                // `from_ip_proto` is a bijection (unknown values keep their
                // byte in `Other`), so any u8 round-trips.
                proto: Protocol::from_ip_proto(proto),
            },
            slot,
            last_seen_ns,
        })
}

fn arb_vr() -> impl Strategy<Value = VrCheckpoint> {
    (
        (0u32..10_000, any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        // Finite floats only: NaN would round-trip bitwise but break the
        // `PartialEq` the assertions rely on.
        (0.0f64..64.0, 0.0f64..8.0, any::<u32>(), any::<u64>(), any::<u64>()),
        (any::<u32>(), 0u8..2, 0u8..3, 0u32..16),
        prop::collection::vec(arb_flow(), 0..16),
    )
        .prop_map(|((n, fi, fo, ad, sh), (w, sc, cs, lc, bo), (rd, q, p, vs), flows)| {
            VrCheckpoint {
                name: format!("vr{n}"),
                frames_in: fi,
                frames_out: fo,
                admitted: ad,
                shed: sh,
                weight: w,
                shed_credit: sc,
                crash_streak: cs,
                last_crash_ns: lc,
                backoff_until_ns: bo,
                respawn_deficit: rd,
                quarantined: q == 1,
                pressure: p,
                vri_slots: vs,
                flows,
            }
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (any::<u32>(), any::<u64>(), arb_stats(), any::<u32>(), prop::collection::vec(arb_vr(), 0..5))
        .prop_map(|(epoch, ts_ns, stats, next_vri, vrs)| Checkpoint {
            epoch,
            ts_ns,
            stats,
            next_vri,
            vrs,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Encode → decode is the identity for every well-formed checkpoint.
    #[test]
    fn encode_decode_is_identity(ck in arb_checkpoint()) {
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).expect("well-formed checkpoint must decode");
        prop_assert_eq!(back, ck);
    }

    /// Any single-byte corruption is caught by the trailing CRC (or an
    /// earlier structural check) — never accepted, never a panic.
    #[test]
    fn single_byte_corruption_is_always_rejected(
        ck in arb_checkpoint(),
        pos in any::<u32>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = ck.encode();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= mask;
        prop_assert!(
            Checkpoint::decode(&bytes).is_err(),
            "flipping byte {} with mask {:#04x} was accepted", idx, mask
        );
    }

    /// Every truncation point yields an error, not a panic or a partial
    /// checkpoint.
    #[test]
    fn truncation_is_always_rejected(ck in arb_checkpoint(), cut in any::<u32>()) {
        let bytes = ck.encode();
        let len = cut as usize % bytes.len();
        prop_assert!(
            Checkpoint::decode(&bytes[..len]).is_err(),
            "truncation to {} bytes was accepted", len
        );
    }

    /// The decoder is total: arbitrary byte soup returns a `Result`, it
    /// does not panic, overflow, or allocate unboundedly.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Checkpoint::decode(&bytes);
    }

    /// Garbage that keeps the magic and a valid trailing CRC still cannot
    /// smuggle a malformed payload past the structural checks.
    #[test]
    fn crc_blessed_garbage_is_still_structurally_checked(
        payload in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        let mut bytes = Vec::with_capacity(payload.len() + 8);
        bytes.extend_from_slice(b"LVCK");
        bytes.extend_from_slice(&payload);
        let crc = lvrm_core::checkpoint::crc32(&bytes).to_le_bytes();
        bytes.extend_from_slice(&crc);
        // Either rejected (nearly always) or a genuinely well-formed
        // payload; the only forbidden outcome is a panic.
        let _ = Checkpoint::decode(&bytes);
    }
}

// ---- monitor-level rejection: corrupt checkpoint => cold start ---------

fn new_lvrm(clock: ManualClock) -> Lvrm<ManualClock> {
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    Lvrm::new(LvrmConfig::default(), cores, clock)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lvrm-ck-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// The fallback guarantee: a corrupt checkpoint file must not panic or
/// wedge the monitor — it logs `checkpoint_rejected`, bumps the counter,
/// and the caller proceeds with a perfectly functional cold start.
#[test]
fn corrupt_checkpoint_falls_back_to_cold_start() {
    let path = temp_path("corrupt.ck");
    std::fs::write(&path, b"LVCKthis is not a checkpoint at all").unwrap();

    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone());
    let mut host = RecordingHost::default();
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    lvrm.add_vr(
        "deptA",
        &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
        Box::new(lvrm_router::FastVr::new("deptA", routes)),
        &mut host,
    );

    assert!(lvrm.restore_from(&path, &mut host).is_err(), "corrupt blob must be rejected");
    assert_eq!(lvrm.epoch(), 0, "a rejected restore stays in the cold-start epoch");

    let snap = lvrm.metrics_snapshot();
    assert_eq!(
        snap.counter("lvrm_checkpoint_rejected_total", &[]),
        Some(1),
        "rejection must be visible as a counter"
    );

    // The monitor still routes: the cold start is a real start.
    let frame = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 1)).udp(
        1000,
        2000,
        &[],
    );
    lvrm.ingress(frame, &mut host);
    host.pump();
    lvrm.process_control();
    let mut out = Vec::new();
    assert_eq!(lvrm.poll_egress(&mut out), 1, "cold-started monitor must forward traffic");

    std::fs::remove_file(&path).ok();
}

/// Truncating a *valid* checkpoint mid-file (the torn-write scenario the
/// atomic rename prevents, simulated here directly) is also rejected
/// cleanly at the monitor level.
#[test]
fn truncated_checkpoint_is_rejected_at_restore() {
    let path = temp_path("truncated.ck");
    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone());
    let mut host = RecordingHost::default();
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    lvrm.add_vr(
        "deptA",
        &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
        Box::new(lvrm_router::FastVr::new("deptA", routes)),
        &mut host,
    );
    assert!(lvrm.checkpoint_to(&path, 1_000), "baseline checkpoint must write");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    assert!(lvrm.restore_from(&path, &mut host).is_err());
    assert_eq!(lvrm.metrics_snapshot().counter("lvrm_checkpoint_rejected_total", &[]), Some(1));
    std::fs::remove_file(&path).ok();
}

/// A checkpoint aimed at an unwritable path is reported (return false +
/// event), never fatal: a monitor that cannot checkpoint keeps routing.
#[test]
fn unwritable_checkpoint_path_is_nonfatal() {
    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone());
    let path = std::path::Path::new("/nonexistent-lvrm-dir/deep/ck.bin");
    assert!(!lvrm.checkpoint_to(path, 1_000), "write into a missing dir must fail");
    assert_eq!(
        lvrm.metrics_snapshot().counter("lvrm_checkpoint_writes_total", &[]),
        Some(0),
        "failed writes are not counted as writes"
    );
}
