//! Property tests for the checkpoint wire format (DESIGN.md §10): any
//! checkpoint the monitor can build must round-trip bit-exactly through
//! encode/decode, and *no* byte stream — corrupted, truncated, or outright
//! garbage — may ever panic the decoder or be silently accepted. The final
//! tests close the loop at the monitor level: a rejected checkpoint must
//! leave the monitor cold-started but fully functional, with the rejection
//! visible in `lvrm_checkpoint_rejected_total` and the event stream.

use std::net::Ipv4Addr;

use lvrm_core::{
    decode_batch, encode_batch, AffinityMode, Checkpoint, CheckpointDelta, CoreId, CoreMap,
    CoreTopology, FlowRecord, HaMsg, Lvrm, LvrmConfig, LvrmStats, ManualClock, RecordingHost,
    ReplicaLedger, ShardEntry, ShardMap, StateUpdate, VrCheckpoint, SHARD_MAP_MAGIC,
};
use lvrm_net::flow::Protocol;
use lvrm_net::{FlowKey, FrameBuilder};
use proptest::prelude::*;

const CASES: u32 = if cfg!(miri) { 8 } else { 128 };

// ---- strategies --------------------------------------------------------

fn arb_stats() -> impl Strategy<Value = LvrmStats> {
    prop::collection::vec(any::<u64>(), 22..23).prop_map(|v| LvrmStats {
        frames_in: v[0],
        frames_out: v[1],
        unclassified: v[2],
        dispatch_drops: v[3],
        no_vri_drops: v[4],
        shrink_lost: v[5],
        control_relayed: v[6],
        control_drops: v[7],
        redispatched: v[8],
        crash_lost: v[9],
        quarantined_drops: v[10],
        vri_deaths: v[11],
        respawns: v[12],
        retired_dispatch_drops: v[13],
        shed_early: v[14],
        reclaimed: v[15],
        queue_lost: v[16],
        retired_dispatched: v[17],
        retired_returned: v[18],
        updates_emitted: v[19],
        updates_folded: v[20],
        updates_lost: v[21],
    })
}

fn arb_flow() -> impl Strategy<Value = FlowRecord> {
    (
        (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>()),
        (0u32..16, any::<u64>()),
    )
        .prop_map(|((src, dst, src_port, dst_port, proto), (slot, last_seen_ns))| FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                src_port,
                dst_port,
                // `from_ip_proto` is a bijection (unknown values keep their
                // byte in `Other`), so any u8 round-trips.
                proto: Protocol::from_ip_proto(proto),
            },
            slot,
            last_seen_ns,
        })
}

fn arb_vr() -> impl Strategy<Value = VrCheckpoint> {
    (
        (0u32..10_000, any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        // Finite floats only: NaN would round-trip bitwise but break the
        // `PartialEq` the assertions rely on.
        (0.0f64..64.0, 0.0f64..8.0, any::<u32>(), any::<u64>(), any::<u64>()),
        (any::<u32>(), 0u8..2, 0u8..3, 0u32..16),
        prop::collection::vec(arb_flow(), 0..16),
    )
        .prop_map(|((n, fi, fo, ad, sh), (w, sc, cs, lc, bo), (rd, q, p, vs), flows)| {
            VrCheckpoint {
                name: format!("vr{n}"),
                frames_in: fi,
                frames_out: fo,
                admitted: ad,
                shed: sh,
                weight: w,
                shed_credit: sc,
                crash_streak: cs,
                last_crash_ns: lc,
                backoff_until_ns: bo,
                respawn_deficit: rd,
                quarantined: q == 1,
                pressure: p,
                vri_slots: vs,
                flows,
            }
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (any::<u32>(), any::<u64>(), arb_stats(), any::<u32>(), prop::collection::vec(arb_vr(), 0..5))
        .prop_map(|(epoch, ts_ns, stats, next_vri, vrs)| Checkpoint {
            epoch,
            ts_ns,
            stats,
            next_vri,
            vrs,
        })
}

/// The wire's canonical flow ordering (mirrors the private
/// `flow_key_bytes` in `checkpoint.rs`).
fn key_bytes(k: &lvrm_net::FlowKey) -> [u8; 13] {
    let mut b = [0u8; 13];
    b[0..4].copy_from_slice(&k.src.octets());
    b[4..8].copy_from_slice(&k.dst.octets());
    b[8..10].copy_from_slice(&k.src_port.to_be_bytes());
    b[10..12].copy_from_slice(&k.dst_port.to_be_bytes());
    b[12] = k.proto.to_ip_proto();
    b
}

/// A checkpoint whose VR names and per-VR flow keys are unique — the
/// shape the monitor actually produces, and the precondition for the
/// delta diff/fold identity (set semantics need set-shaped input).
fn arb_clean_checkpoint() -> impl Strategy<Value = Checkpoint> {
    arb_checkpoint().prop_map(|mut ck| {
        for (i, vr) in ck.vrs.iter_mut().enumerate() {
            vr.name = format!("vr{i}");
            vr.flows.sort_by_key(|f| key_bytes(&f.key));
            vr.flows.dedup_by_key(|f| key_bytes(&f.key));
        }
        ck
    })
}

/// Deterministically mutate a checkpoint the way a live monitor would
/// between two stream instants: counters move forward, flows appear,
/// disappear, and re-pin.
fn mutate(ck: &Checkpoint, seed: u64) -> Checkpoint {
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut out = ck.clone();
    out.ts_ns = out.ts_ns.wrapping_add(next() % 1_000_000_000);
    out.stats.frames_in = out.stats.frames_in.wrapping_add(next() % 10_000);
    out.stats.frames_out = out.stats.frames_out.wrapping_add(next() % 10_000);
    out.stats.crash_lost = out.stats.crash_lost.wrapping_add(next() % 100);
    out.next_vri = out.next_vri.wrapping_add((next() % 4) as u32);
    for vr in &mut out.vrs {
        vr.frames_in = vr.frames_in.wrapping_add(next() % 5_000);
        vr.admitted = vr.admitted.wrapping_add(next() % 5_000);
        if !vr.flows.is_empty() && next() % 2 == 0 {
            let victim = (next() as usize) % vr.flows.len();
            vr.flows.remove(victim);
        }
        if !vr.flows.is_empty() && next() % 2 == 0 {
            let repin = (next() as usize) % vr.flows.len();
            vr.flows[repin].slot = (next() % 8) as u32;
            vr.flows[repin].last_seen_ns = next();
        }
        let fresh = FlowRecord {
            key: lvrm_net::FlowKey {
                src: Ipv4Addr::from((next() % u32::MAX as u64) as u32),
                dst: Ipv4Addr::from((next() % u32::MAX as u64) as u32),
                src_port: (next() % 65_536) as u16,
                dst_port: (next() % 65_536) as u16,
                proto: lvrm_net::flow::Protocol::Udp,
            },
            slot: (next() % 8) as u32,
            last_seen_ns: next(),
        };
        if !vr.flows.iter().any(|f| key_bytes(&f.key) == key_bytes(&fresh.key)) {
            vr.flows.push(fresh);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Delta encode → decode is the identity for every diff the stream
    /// can produce.
    #[test]
    fn delta_encode_decode_is_identity(
        prev in arb_clean_checkpoint(),
        seed in any::<u64>(),
        seq in any::<u64>(),
    ) {
        let next = mutate(&prev, seed);
        let delta = CheckpointDelta::diff(&prev, &next, seq);
        let bytes = delta.encode();
        let back = CheckpointDelta::decode(&bytes).expect("well-formed delta must decode");
        prop_assert_eq!(back, delta);
    }

    /// Any single-byte corruption of a delta is rejected — the replication
    /// stream can never fold a flipped bit into the shadow.
    #[test]
    fn delta_single_byte_corruption_is_always_rejected(
        prev in arb_clean_checkpoint(),
        seed in any::<u64>(),
        pos in any::<u32>(),
        mask in 1u8..=255,
    ) {
        let next = mutate(&prev, seed);
        let mut bytes = CheckpointDelta::diff(&prev, &next, 1).encode();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= mask;
        prop_assert!(
            CheckpointDelta::decode(&bytes).is_err(),
            "flipping delta byte {} with mask {:#04x} was accepted", idx, mask
        );
    }

    /// Every delta truncation point errors — never panics, never yields a
    /// partial delta.
    #[test]
    fn delta_truncation_is_always_rejected(
        prev in arb_clean_checkpoint(),
        seed in any::<u64>(),
        cut in any::<u32>(),
    ) {
        let next = mutate(&prev, seed);
        let bytes = CheckpointDelta::diff(&prev, &next, 1).encode();
        let len = cut as usize % bytes.len();
        prop_assert!(
            CheckpointDelta::decode(&bytes[..len]).is_err(),
            "delta truncation to {} bytes was accepted", len
        );
    }

    /// The delta decoder is total over arbitrary byte soup.
    #[test]
    fn delta_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = CheckpointDelta::decode(&bytes);
    }

    /// The two wire formats cannot be confused for one another: a delta
    /// never decodes as a checkpoint and vice versa (distinct magics).
    #[test]
    fn delta_and_checkpoint_magics_are_disjoint(
        ck in arb_clean_checkpoint(),
        seed in any::<u64>(),
    ) {
        let next = mutate(&ck, seed);
        let delta_bytes = CheckpointDelta::diff(&ck, &next, 1).encode();
        prop_assert!(Checkpoint::decode(&delta_bytes).is_err());
        prop_assert!(CheckpointDelta::decode(&ck.encode()).is_err());
    }

    /// The differential identity the whole replication stream rests on:
    /// folding the chain of diffs over any number of generations
    /// reconstructs the final checkpoint exactly (canonical form).
    #[test]
    fn differential_fold_chain_reconstructs_exactly(
        base in arb_clean_checkpoint(),
        seeds in prop::collection::vec(any::<u64>(), 1..6),
    ) {
        let mut shadow = base.canonical();
        let mut current = base;
        for (i, &seed) in seeds.iter().enumerate() {
            let next = mutate(&current, seed);
            let delta = CheckpointDelta::diff(&current, &next, i as u64 + 1);
            shadow.fold(&delta);
            prop_assert_eq!(
                &shadow,
                &next.canonical(),
                "fold diverged at generation {}", i
            );
            current = next;
        }
    }

    /// Encode → decode is the identity for every well-formed checkpoint.
    #[test]
    fn encode_decode_is_identity(ck in arb_checkpoint()) {
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).expect("well-formed checkpoint must decode");
        prop_assert_eq!(back, ck);
    }

    /// Any single-byte corruption is caught by the trailing CRC (or an
    /// earlier structural check) — never accepted, never a panic.
    #[test]
    fn single_byte_corruption_is_always_rejected(
        ck in arb_checkpoint(),
        pos in any::<u32>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = ck.encode();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= mask;
        prop_assert!(
            Checkpoint::decode(&bytes).is_err(),
            "flipping byte {} with mask {:#04x} was accepted", idx, mask
        );
    }

    /// Every truncation point yields an error, not a panic or a partial
    /// checkpoint.
    #[test]
    fn truncation_is_always_rejected(ck in arb_checkpoint(), cut in any::<u32>()) {
        let bytes = ck.encode();
        let len = cut as usize % bytes.len();
        prop_assert!(
            Checkpoint::decode(&bytes[..len]).is_err(),
            "truncation to {} bytes was accepted", len
        );
    }

    /// The decoder is total: arbitrary byte soup returns a `Result`, it
    /// does not panic, overflow, or allocate unboundedly.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Checkpoint::decode(&bytes);
    }

    /// Garbage that keeps the magic and a valid trailing CRC still cannot
    /// smuggle a malformed payload past the structural checks.
    #[test]
    fn crc_blessed_garbage_is_still_structurally_checked(
        payload in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        let mut bytes = Vec::with_capacity(payload.len() + 8);
        bytes.extend_from_slice(b"LVCK");
        bytes.extend_from_slice(&payload);
        let crc = lvrm_core::checkpoint::crc32(&bytes).to_le_bytes();
        bytes.extend_from_slice(&crc);
        // Either rejected (nearly always) or a genuinely well-formed
        // payload; the only forbidden outcome is a panic.
        let _ = Checkpoint::decode(&bytes);
    }
}

// ---- LVSU state-update batches (DESIGN.md §14) -------------------------

fn arb_update_key() -> impl Strategy<Value = FlowKey> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>()).prop_map(
        |(src, dst, src_port, dst_port, proto)| FlowKey {
            src: Ipv4Addr::from(src),
            dst: Ipv4Addr::from(dst),
            src_port,
            dst_port,
            proto: Protocol::from_ip_proto(proto),
        },
    )
}

/// A batch the emitter can produce: per-origin seqs strictly increase.
fn arb_update_batch() -> impl Strategy<Value = Vec<StateUpdate>> {
    prop::collection::vec((arb_update_key(), any::<u64>(), any::<u64>(), any::<u64>()), 0..24)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (key, d_frames, d_bytes, last_seen_ns))| StateUpdate {
                    key,
                    seq: i as u64 + 1,
                    d_frames,
                    d_bytes,
                    last_seen_ns,
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// LVSU encode → decode is the identity, and the wire length is exactly
    /// the documented fixed-size framing (no hidden variability to desync
    /// a reader on).
    #[test]
    fn state_update_encode_decode_is_identity(
        origin in any::<u32>(),
        updates in arb_update_batch(),
    ) {
        let bytes = encode_batch(origin, &updates);
        prop_assert_eq!(bytes.len(), 15 + 45 * updates.len());
        let (back_origin, back) = decode_batch(&bytes).expect("well-formed batch must decode");
        prop_assert_eq!(back_origin, origin);
        prop_assert_eq!(back, updates);
    }

    /// Any single-byte corruption of a batch is rejected — a sibling
    /// replica can never fold a flipped bit into its books.
    #[test]
    fn state_update_single_byte_corruption_is_always_rejected(
        origin in any::<u32>(),
        updates in arb_update_batch(),
        pos in any::<u32>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = encode_batch(origin, &updates);
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= mask;
        prop_assert!(
            decode_batch(&bytes).is_err(),
            "flipping LVSU byte {} with mask {:#04x} was accepted", idx, mask
        );
    }

    /// Every truncation point errors — never panics, never yields a
    /// partial batch.
    #[test]
    fn state_update_truncation_is_always_rejected(
        origin in any::<u32>(),
        updates in arb_update_batch(),
        cut in any::<u32>(),
    ) {
        let bytes = encode_batch(origin, &updates);
        let len = cut as usize % bytes.len();
        prop_assert!(
            decode_batch(&bytes[..len]).is_err(),
            "LVSU truncation to {} bytes was accepted", len
        );
    }

    /// The LVSU decoder is total over arbitrary byte soup.
    #[test]
    fn state_update_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode_batch(&bytes);
    }

    /// The four wire magics — LVCK, LVCD, LVHA, LVSU — are mutually
    /// disjoint: no format's well-formed bytes decode as any other, so a
    /// mis-routed control payload can never be folded as the wrong kind.
    #[test]
    fn state_update_magic_is_disjoint_from_other_formats(
        ck in arb_clean_checkpoint(),
        seed in any::<u64>(),
        origin in any::<u32>(),
        updates in arb_update_batch(),
    ) {
        let lvsu = encode_batch(origin, &updates);
        prop_assert!(Checkpoint::decode(&lvsu).is_err());
        prop_assert!(CheckpointDelta::decode(&lvsu).is_err());
        prop_assert!(HaMsg::decode(&lvsu).is_err());

        let next = mutate(&ck, seed);
        prop_assert!(decode_batch(&ck.encode()).is_err());
        prop_assert!(decode_batch(&CheckpointDelta::diff(&ck, &next, 1).encode()).is_err());
        prop_assert!(decode_batch(&HaMsg::SyncReq { have_seq: seed }.encode()).is_err());
    }

    /// Folding is idempotent per (origin, seq): after a batch sequence has
    /// been folded in order, re-folding any replayed/reordered selection of
    /// those batches changes neither the books nor the folded count. This
    /// is what makes at-least-once fan-out delivery safe.
    #[test]
    fn state_update_fold_is_idempotent_under_replay_and_reorder(
        updates in arb_update_batch(),
        replay in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let mut ledger = ReplicaLedger::new(7);
        for u in &updates {
            prop_assert!(ledger.fold(3, u), "first delivery must fold");
        }
        let books: Vec<_> = updates
            .iter()
            .map(|u| ledger.book(&u.key).expect("observed flow has a book"))
            .collect();
        let folded = ledger.folded;
        if !updates.is_empty() {
            for r in replay {
                let u = &updates[r as usize % updates.len()];
                prop_assert!(!ledger.fold(3, u), "replayed seq {} must be a no-op", u.seq);
            }
        }
        prop_assert_eq!(ledger.folded, folded, "replays never recount");
        for (u, before) in updates.iter().zip(books) {
            prop_assert_eq!(ledger.book(&u.key), Some(before));
        }
    }
}

// ---- monitor-level rejection: corrupt checkpoint => cold start ---------

fn new_lvrm(clock: ManualClock) -> Lvrm<ManualClock> {
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    Lvrm::new(LvrmConfig::default(), cores, clock)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lvrm-ck-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// The fallback guarantee: a corrupt checkpoint file must not panic or
/// wedge the monitor — it logs `checkpoint_rejected`, bumps the counter,
/// and the caller proceeds with a perfectly functional cold start.
#[test]
fn corrupt_checkpoint_falls_back_to_cold_start() {
    let path = temp_path("corrupt.ck");
    std::fs::write(&path, b"LVCKthis is not a checkpoint at all").unwrap();

    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone());
    let mut host = RecordingHost::default();
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    lvrm.add_vr(
        "deptA",
        &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
        Box::new(lvrm_router::FastVr::new("deptA", routes)),
        &mut host,
    );

    assert!(lvrm.restore_from(&path, &mut host).is_err(), "corrupt blob must be rejected");
    assert_eq!(lvrm.epoch(), 0, "a rejected restore stays in the cold-start epoch");

    let snap = lvrm.metrics_snapshot();
    assert_eq!(
        snap.counter("lvrm_checkpoint_rejected_total", &[]),
        Some(1),
        "rejection must be visible as a counter"
    );

    // The monitor still routes: the cold start is a real start.
    let frame = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 1)).udp(
        1000,
        2000,
        &[],
    );
    lvrm.ingress(frame, &mut host);
    host.pump();
    lvrm.process_control();
    let mut out = Vec::new();
    assert_eq!(lvrm.poll_egress(&mut out), 1, "cold-started monitor must forward traffic");

    std::fs::remove_file(&path).ok();
}

/// Truncating a *valid* checkpoint mid-file (the torn-write scenario the
/// atomic rename prevents, simulated here directly) is also rejected
/// cleanly at the monitor level.
#[test]
fn truncated_checkpoint_is_rejected_at_restore() {
    let path = temp_path("truncated.ck");
    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone());
    let mut host = RecordingHost::default();
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    lvrm.add_vr(
        "deptA",
        &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
        Box::new(lvrm_router::FastVr::new("deptA", routes)),
        &mut host,
    );
    assert!(lvrm.checkpoint_to(&path, 1_000), "baseline checkpoint must write");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    assert!(lvrm.restore_from(&path, &mut host).is_err());
    assert_eq!(lvrm.metrics_snapshot().counter("lvrm_checkpoint_rejected_total", &[]), Some(1));
    std::fs::remove_file(&path).ok();
}

/// A checkpoint aimed at an unwritable path is reported (return false +
/// event), never fatal: a monitor that cannot checkpoint keeps routing.
#[test]
fn unwritable_checkpoint_path_is_nonfatal() {
    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone());
    let path = std::path::Path::new("/nonexistent-lvrm-dir/deep/ck.bin");
    assert!(!lvrm.checkpoint_to(path, 1_000), "write into a missing dir must fail");
    assert_eq!(
        lvrm.metrics_snapshot().counter("lvrm_checkpoint_writes_total", &[]),
        Some(0),
        "failed writes are not counted as writes"
    );
}

// ---- shard-map (LVSM) wire format --------------------------------------

fn arb_shard_entry() -> impl Strategy<Value = ShardEntry> {
    (0u32..10_000, any::<u32>(), 0u8..=32, 0u32..64).prop_map(|(n, net, prefix, shard)| {
        ShardEntry { vr: format!("vr{n}"), net: Ipv4Addr::from(net), prefix, shard }
    })
}

fn arb_shard_map() -> impl Strategy<Value = ShardMap> {
    (any::<u32>(), prop::collection::vec(arb_shard_entry(), 0..32))
        .prop_map(|(version, entries)| ShardMap { version, entries })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// The fleet directory's wire format (LVSM) round-trips bit-exactly:
    /// any map the partitioner can build survives encode → decode.
    #[test]
    fn shard_map_encode_decode_is_identity(map in arb_shard_map()) {
        let bytes = map.encode();
        prop_assert_eq!(&bytes[..4], SHARD_MAP_MAGIC.as_slice());
        let back = ShardMap::decode(&bytes).expect("well-formed map must decode");
        prop_assert_eq!(back, map);
    }

    /// Any single-byte corruption of an LVSM frame is rejected — a
    /// flipped bit on the gossip wire can never re-partition the fleet.
    #[test]
    fn shard_map_single_byte_corruption_is_always_rejected(
        map in arb_shard_map(),
        pos in any::<u32>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = map.encode();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= mask;
        prop_assert!(
            ShardMap::decode(&bytes).is_err(),
            "flipping LVSM byte {} with mask {:#04x} was accepted", idx, mask
        );
    }

    /// Every LVSM truncation point errors — never panics, never yields a
    /// partial directory.
    #[test]
    fn shard_map_truncation_is_always_rejected(map in arb_shard_map(), cut in any::<u32>()) {
        let bytes = map.encode();
        let len = cut as usize % bytes.len();
        prop_assert!(
            ShardMap::decode(&bytes[..len]).is_err(),
            "LVSM truncation to {} bytes was accepted", len
        );
    }

    /// The LVSM decoder is total over arbitrary byte soup.
    #[test]
    fn shard_map_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = ShardMap::decode(&bytes);
    }

    /// LVSM is magic-disjoint from every other wire format in the family
    /// (LVCK checkpoints, LVCD deltas, LVHA pair messages, LVSU state
    /// updates) — no frame of one kind ever decodes as another.
    #[test]
    fn shard_map_magic_is_disjoint_from_the_wire_family(
        map in arb_shard_map(),
        ck in arb_clean_checkpoint(),
        seed in any::<u64>(),
    ) {
        let lvsm = map.encode();
        prop_assert!(Checkpoint::decode(&lvsm).is_err(), "LVSM decoded as LVCK");
        prop_assert!(CheckpointDelta::decode(&lvsm).is_err(), "LVSM decoded as LVCD");
        prop_assert!(HaMsg::decode(&lvsm).is_err(), "LVSM decoded as LVHA");
        prop_assert!(decode_batch(&lvsm).is_err(), "LVSM decoded as LVSU");

        let next = mutate(&ck, seed);
        prop_assert!(ShardMap::decode(&ck.encode()).is_err(), "LVCK decoded as LVSM");
        let delta = CheckpointDelta::diff(&ck, &next, 1).encode();
        prop_assert!(ShardMap::decode(&delta).is_err(), "LVCD decoded as LVSM");
        let advert = HaMsg::Advert { term: 1, node_id: 2, priority: 3, epoch: 4, seq: 5 };
        prop_assert!(ShardMap::decode(&advert.encode()).is_err(), "LVHA decoded as LVSM");
    }
}
