//! Chaos suite for the VRI supervisor: deterministic fault injection
//! (seeded plans against a manual clock — no sleeps, no wall time) driving
//! crash, stall, crash-loop, and reap-failure scenarios, asserting bounded
//! loss, recovery within one supervisor tick, and exact stat conservation
//! under every `QueueKind`.
//!
//! Set `LVRM_CHAOS_QUEUE` to one of `lamport` / `fastforward` / `mutex` / `vlink` to
//! restrict the sweep (the CI matrix does this); unset runs all four.
//!
//! The conservation identity checked throughout, after every queue has been
//! drained:
//!
//! ```text
//! frames_in == frames_out + unclassified + dispatch_drops + no_vri_drops
//!              + shrink_lost + crash_lost + quarantined_drops + shed_early
//! ```
//!
//! plus the drop identity (the double-counting regression guard):
//!
//! ```text
//! dispatch_drops == Σ lvrm_vri_dispatch_drops_total   (live + retired + ring)
//! ```

use std::net::Ipv4Addr;

use lvrm_core::monitor::SupervisionAction;
use lvrm_core::{
    AffinityMode, AllocatorKind, CoreId, CoreMap, CoreTopology, FaultPlan, FaultyHost, Lvrm,
    LvrmConfig, LvrmStats, ManualClock, RecordingHost, VrId, VriHost, VriId, VriSpec,
};
use lvrm_ipc::{QueueKind, VriEndpoint};
use lvrm_net::{Frame, FrameBuilder};
use lvrm_router::VirtualRouter;

/// Frames parked on VRIs when a fault fires (smaller under Miri: the
/// interpreter runs the same paths, just fewer times around them).
const BURST: usize = if cfg!(miri) { 16 } else { 64 };
const SEEDS: &[u64] = if cfg!(miri) { &[7] } else { &[7, 42, 1337] };

fn queue_kinds() -> Vec<QueueKind> {
    match std::env::var("LVRM_CHAOS_QUEUE") {
        Ok(want) => vec![want.parse::<QueueKind>().expect("LVRM_CHAOS_QUEUE")],
        Err(_) => QueueKind::ALL.to_vec(),
    }
}

fn chaos_config(kind: QueueKind) -> LvrmConfig {
    LvrmConfig {
        queue_kind: kind,
        allocator: AllocatorKind::Fixed { cores: 2 },
        supervision: true,
        ..Default::default()
    }
}

fn new_lvrm(clock: ManualClock, config: LvrmConfig) -> Lvrm<ManualClock> {
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    Lvrm::new(config, cores, clock)
}

/// Every classified frame must come back out, so the VR routes everything.
fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new(name, routes))
}

fn frame(last: u8) -> Frame {
    FrameBuilder::new(Ipv4Addr::new(10, 0, 1, last), Ipv4Addr::new(10, 0, 2, 1)).udp(1, 2, &[])
}

fn subnet() -> [(Ipv4Addr, u8); 1] {
    [(Ipv4Addr::new(10, 0, 1, 0), 24)]
}

fn assert_conserved(s: &LvrmStats) {
    assert_eq!(
        s.frames_in,
        s.frames_out
            + s.unclassified
            + s.dispatch_drops
            + s.no_vri_drops
            + s.shrink_lost
            + s.crash_lost
            + s.quarantined_drops
            + s.shed_early,
        "conservation identity violated: {s:?}"
    );
}

fn assert_drop_identity(lvrm: &Lvrm<ManualClock>) {
    // The aggregate must equal the per-VRI drop family's sum — live series,
    // retired series frozen at their final values, and (under the VLink
    // fabric) the VR's synthetic `vri="ring"` series for ring refusals.
    let snap = lvrm.metrics_snapshot();
    assert_eq!(
        lvrm.stats().dispatch_drops,
        snap.counter_sum("lvrm_vri_dispatch_drops_total"),
        "dispatch_drops must equal the per-VRI drop family sum: {:?}",
        lvrm.stats()
    );
}

/// Frames parked VR-wide and visible to the monitor: the `lvrm_data_queued`
/// gauge (per-VRI queues plus, under VLink, the shared ring).
fn data_queued(lvrm: &Lvrm<ManualClock>) -> u64 {
    lvrm.metrics_snapshot().gauge("lvrm_data_queued", &[]).unwrap_or(0.0).round() as u64
}

/// Incoming-queue depth of one VRI, from the public snapshot.
fn queued(lvrm: &Lvrm<ManualClock>, vri: VriId) -> usize {
    lvrm.snapshot()
        .iter()
        .flat_map(|vr| vr.vris.clone())
        .find(|v| v.id == vri)
        .map_or(0, |v| v.queue_len)
}

/// Pump/relay/collect until nothing moves (no simulated time advances).
fn drain(lvrm: &mut Lvrm<ManualClock>, host: &mut RecordingHost, out: &mut Vec<Frame>) {
    loop {
        let processed = host.pump();
        lvrm.process_control();
        let egress = lvrm.poll_egress(out);
        if processed == 0 && egress == 0 {
            break;
        }
    }
}

/// The acceptance scenario: a VRI crashes with frames parked in its incoming
/// queue. The supervisor must notice within one tick, respawn it, re-balance
/// the stranded frames to the survivors, and lose nothing.
#[test]
fn crash_with_frames_in_flight_recovers_within_one_tick() {
    for kind in queue_kinds() {
        let crash_at = 2_000_000_000u64;
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
        let plan = FaultPlan::new().crash_at(crash_at, 0);
        let mut host = FaultyHost::new(RecordingHost::with_heartbeats(), plan);
        let vr = lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);
        assert_eq!(lvrm.vri_count(vr), 2);
        let victim = host.spawn_order[0];

        let mut out = Vec::new();
        let mut victim_queued = 0u64;
        // 100 ms steps: traffic + heartbeats flow, supervisor ticks ride the
        // 1 s reallocation cadence inside `ingress`.
        for step in 0..=40u64 {
            let t = step * 100_000_000;
            clock.set_ns(t);
            if t == crash_at {
                // Park a burst across both VRIs, then yank the victim out
                // from under its share before anything services it.
                let mut burst: Vec<Frame> = (0..BURST).map(|i| frame((i % 200) as u8)).collect();
                lvrm.ingress_batch(&mut burst, &mut host);
                victim_queued = queued(&lvrm, victim) as u64;
                if kind == QueueKind::VLink {
                    // The fabric parks the burst in the VR-wide ring, not on
                    // any one instance, so a crash can strand nothing.
                    assert_eq!(victim_queued, 0, "{kind:?}: no per-VRI backlog under the fabric");
                    assert_eq!(
                        data_queued(&lvrm),
                        BURST as u64,
                        "{kind:?}: burst parked in the shared ring"
                    );
                } else {
                    assert!(victim_queued > 0, "{kind:?}: burst must strand frames on the victim");
                }
            } else {
                lvrm.ingress(frame((step % 200) as u8), &mut host);
            }
            host.apply(t);
            host.inner.pump();
            lvrm.process_control();
            lvrm.maybe_reallocate(t, &mut host);
            lvrm.poll_egress(&mut out);
        }
        drain(&mut lvrm, &mut host.inner, &mut out);

        let died = lvrm
            .supervision_log
            .iter()
            .find(|e| matches!(e.action, SupervisionAction::Died { .. }))
            .expect("supervisor must log the death");
        assert_eq!(died.vri, victim, "{kind:?}");
        assert!(
            died.ts_ns > crash_at && died.ts_ns <= crash_at + 1_100_000_000,
            "{kind:?}: death must land within one supervisor tick, got {} ns late",
            died.ts_ns - crash_at
        );
        assert_eq!(
            died.action,
            SupervisionAction::Died { reclaimed: victim_queued, lost: 0 },
            "{kind:?}: every parked frame is reclaimed"
        );
        let respawned = lvrm
            .supervision_log
            .iter()
            .find(|e| matches!(e.action, SupervisionAction::Respawned))
            .expect("supervisor must respawn");
        assert_eq!(respawned.ts_ns, died.ts_ns, "{kind:?}: first respawn carries no backoff");

        let s = &lvrm.stats();
        assert_eq!(s.vri_deaths, 1, "{kind:?}");
        assert_eq!(s.respawns, 1, "{kind:?}");
        assert_eq!(s.crash_lost, 0, "{kind:?}");
        assert_eq!(s.redispatched, victim_queued, "{kind:?}: stranded frames re-balanced");
        assert_eq!(lvrm.vri_count(vr), 2, "{kind:?}: instance count restored");
        // Under VLink this is the headline guarantee: the dead VRI loses
        // nothing still queued, because the ring outlives the instance and
        // the survivors steal the backlog.
        assert_eq!(s.frames_in, s.frames_out, "{kind:?}: a reapable crash loses nothing");
        assert_conserved(s);
        assert_drop_identity(&lvrm);
    }
}

/// A wedged instance keeps its endpoint attached but stops heartbeating: it
/// must pass through Suspect, be declared dead once the silence exceeds
/// `dead_after_ns`, and have its queue reclaimed like a crash.
#[test]
fn stalled_vri_goes_suspect_then_dead_and_queues_are_reclaimed() {
    for kind in queue_kinds() {
        let stall_at = 2_000_000_000u64;
        let clock = ManualClock::new();
        let config = chaos_config(kind);
        let dead_after = config.dead_after_ns;
        let mut lvrm = new_lvrm(clock.clone(), config);
        let plan = FaultPlan::new().stall_at(stall_at, 0);
        let mut host = FaultyHost::new(RecordingHost::with_heartbeats(), plan);
        let _vr = lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);
        let victim = host.spawn_order[0];

        let mut out = Vec::new();
        for step in 0..=60u64 {
            let t = step * 100_000_000;
            clock.set_ns(t);
            lvrm.ingress(frame((step % 200) as u8), &mut host);
            host.apply(t);
            host.inner.pump();
            lvrm.process_control();
            // Between the stall and the dead threshold the victim must read
            // Suspect: silent past `suspect_after_ns`, endpoint still there.
            if t == stall_at + 500_000_000 {
                lvrm.supervise(t, &mut host);
                let snap = lvrm.snapshot();
                let v = snap[0].vris.iter().find(|v| v.id == victim).expect("victim still listed");
                assert_eq!(v.health, lvrm_core::VriHealth::Suspect, "{kind:?}");
                assert_eq!(lvrm.stats().vri_deaths, 0, "{kind:?}: suspect is not dead");
            }
            lvrm.maybe_reallocate(t, &mut host);
            lvrm.poll_egress(&mut out);
        }
        drain(&mut lvrm, &mut host.inner, &mut out);

        let died = lvrm
            .supervision_log
            .iter()
            .find(|e| matches!(e.action, SupervisionAction::Died { .. }))
            .expect("stall must be declared dead via heartbeat timeout");
        assert_eq!(died.vri, victim, "{kind:?}");
        // Last heartbeat landed one step before the stall; detection is the
        // first 1 s tick after the silence exceeds `dead_after_ns`.
        assert!(
            died.ts_ns >= stall_at + dead_after
                && died.ts_ns <= stall_at + dead_after + 1_100_000_000,
            "{kind:?}: dead-man timer fired at {} (stall {stall_at})",
            died.ts_ns
        );
        let s = &lvrm.stats();
        assert_eq!(s.vri_deaths, 1, "{kind:?}");
        assert_eq!(s.respawns, 1, "{kind:?}");
        assert_eq!(s.crash_lost, 0, "{kind:?}: attached endpoint is reapable");
        assert_eq!(s.frames_in, s.frames_out, "{kind:?}: nothing lost to the stall");
        assert_conserved(s);
        assert_drop_identity(&lvrm);
    }
}

/// A crash-looping VR: first respawn is immediate, later refills satisfy the
/// supervisor's deficit exactly once, and at the quarantine threshold the VR
/// is cut off — reclaimed and subsequent frames land in `quarantined_drops`.
#[test]
fn crash_loop_quarantines_vr_and_counts_its_drops() {
    for kind in queue_kinds() {
        let clock = ManualClock::new();
        let config = LvrmConfig {
            allocator: AllocatorKind::Fixed { cores: 1 },
            quarantine_after: 3,
            // Only detach-detection here: no heartbeat pump in this test.
            dead_after_ns: 1_000_000_000_000,
            suspect_after_ns: 500_000_000_000,
            ..chaos_config(kind)
        };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);
        // Under the VLink fabric the backlog lives in the VR-wide ring, so
        // crashes reclaim nothing: frames wait in place until quarantine
        // drains the stranded ring in one shot.
        let vlink = kind == QueueKind::VLink;

        let mut t = 0u64;
        let tick = |lvrm: &mut Lvrm<ManualClock>, host: &mut RecordingHost, t: &mut u64| {
            *t += 1_100_000_000;
            clock.set_ns(*t);
            lvrm.maybe_reallocate(*t, host);
        };

        // Round 1: park frames, crash. Streak 1 respawns in the same tick and
        // the parked frames follow to the replacement.
        let mut burst: Vec<Frame> = (0..10).map(frame).collect();
        lvrm.ingress_batch(&mut burst, &mut host);
        host.crash_vri(host.spawned.last().unwrap().vri);
        tick(&mut lvrm, &mut host, &mut t);
        assert_eq!(lvrm.stats().vri_deaths, 1, "{kind:?}");
        if vlink {
            assert_eq!(lvrm.stats().redispatched, 0, "{kind:?}: nothing to reclaim from the ring");
            assert_eq!(data_queued(&lvrm), 10, "{kind:?}: backlog rides out the crash in place");
        } else {
            assert_eq!(lvrm.stats().redispatched, 10, "{kind:?}: parked frames follow the respawn");
        }

        // Round 2: crash the replacement (now holding those 10 frames).
        // Streak 2 puts the supervisor's respawn behind a backoff, so the
        // reclaimed frames find no instance; the allocator's refill in the
        // same tick absorbs the deficit (one replacement, not two).
        host.crash_vri(host.spawned.last().unwrap().vri);
        tick(&mut lvrm, &mut host, &mut t);
        assert_eq!(lvrm.stats().vri_deaths, 2, "{kind:?}");
        if vlink {
            assert_eq!(
                lvrm.stats().no_vri_drops,
                0,
                "{kind:?}: the ring holds the backlog through the backoff window"
            );
            assert_eq!(data_queued(&lvrm), 10, "{kind:?}");
        } else {
            assert_eq!(
                lvrm.stats().no_vri_drops,
                10,
                "{kind:?}: backoff window loses to a named counter"
            );
        }
        assert_eq!(lvrm.vri_count(vr), 1, "{kind:?}: allocator refill absorbed the deficit");
        assert_eq!(lvrm.stats().respawns, 2, "{kind:?}");

        // Round 3: park frames and crash again — the streak hits the
        // quarantine threshold, so the reclaimed frames are quarantine drops
        // and no replacement ever comes.
        let mut burst: Vec<Frame> = (0..10).map(frame).collect();
        lvrm.ingress_batch(&mut burst, &mut host);
        host.crash_vri(host.spawned.last().unwrap().vri);
        tick(&mut lvrm, &mut host, &mut t);
        assert!(lvrm.vr_quarantined(vr), "{kind:?}");
        assert_eq!(lvrm.stats().vri_deaths, 3, "{kind:?}");
        // Classic kinds lost round 1's frames to re-dispatch and round 2's to
        // the backoff; the ring kept both, so quarantine drains all 20.
        assert_eq!(lvrm.stats().quarantined_drops, if vlink { 20 } else { 10 }, "{kind:?}");
        assert_eq!(data_queued(&lvrm), 0, "{kind:?}: quarantine leaves nothing parked");
        assert_eq!(lvrm.vri_count(vr), 0, "{kind:?}: no respawn after quarantine");
        let quarantined_ts = lvrm
            .supervision_log
            .iter()
            .find(|e| e.action == SupervisionAction::Quarantined)
            .expect("quarantine must be logged")
            .ts_ns;
        assert_eq!(quarantined_ts, t, "{kind:?}");

        // Traffic to a quarantined VR is dropped loudly, and even a long
        // healthy stretch does not un-quarantine it.
        for i in 0..5 {
            lvrm.ingress(frame(i), &mut host);
        }
        t += 100_000_000_000;
        clock.set_ns(t);
        lvrm.maybe_reallocate(t, &mut host);
        assert_eq!(lvrm.stats().quarantined_drops, if vlink { 25 } else { 15 }, "{kind:?}");
        assert_eq!(lvrm.vri_count(vr), 0, "{kind:?}");
        assert!(
            !lvrm
                .supervision_log
                .iter()
                .any(|e| { e.action == SupervisionAction::Respawned && e.ts_ns > quarantined_ts }),
            "{kind:?}: no respawns after quarantine"
        );

        // Nothing was ever pumped, so everything sits in drop counters.
        assert_eq!(lvrm.stats().frames_out, 0, "{kind:?}");
        assert_conserved(&lvrm.stats());
        assert_drop_identity(&lvrm);
    }
}

/// A host whose dead endpoints are unrecoverable (queues lived in another
/// address space). Loss must be bounded to exactly the frames queued at the
/// dead instance, all counted as `crash_lost`.
struct NoReapHost {
    inner: RecordingHost,
}

impl VriHost for NoReapHost {
    fn spawn_vri(
        &mut self,
        spec: VriSpec,
        endpoint: VriEndpoint<Frame>,
        router: Box<dyn VirtualRouter>,
    ) {
        self.inner.spawn_vri(spec, endpoint, router);
    }

    fn kill_vri(&mut self, vr: VrId, vri: VriId) {
        self.inner.kill_vri(vr, vri);
    }
    // Default `reap_endpoint` returns None: frames die with the process.
}

#[test]
fn unreapable_crash_loss_is_bounded_and_named() {
    for kind in queue_kinds() {
        let clock = ManualClock::new();
        let config = LvrmConfig {
            dead_after_ns: 1_000_000_000_000,
            suspect_after_ns: 500_000_000_000,
            ..chaos_config(kind)
        };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = NoReapHost { inner: RecordingHost::default() };
        let vr = lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);
        let victim = host.inner.spawned[0].vri;

        let mut burst: Vec<Frame> = (0..BURST).map(|i| frame((i % 200) as u8)).collect();
        lvrm.ingress_batch(&mut burst, &mut host);
        let victim_queued = queued(&lvrm, victim) as u64;
        if kind == QueueKind::VLink {
            // Even an unreapable host loses nothing under the fabric: the
            // backlog sits in the monitor-side ring, which no dead process
            // can take with it — `crash_lost` stays 0 below.
            assert_eq!(victim_queued, 0, "{kind:?}");
            assert_eq!(data_queued(&lvrm), BURST as u64, "{kind:?}");
        } else {
            assert!(victim_queued > 0, "{kind:?}");
        }
        host.inner.crash_vri(victim);

        clock.set_ns(1_100_000_000);
        lvrm.maybe_reallocate(1_100_000_000, &mut host);

        let died = lvrm
            .supervision_log
            .iter()
            .find(|e| matches!(e.action, SupervisionAction::Died { .. }))
            .expect("death logged");
        assert_eq!(
            died.action,
            SupervisionAction::Died { reclaimed: 0, lost: victim_queued },
            "{kind:?}"
        );
        assert_eq!(lvrm.stats().crash_lost, victim_queued, "{kind:?}: loss bounded to the queue");
        assert_eq!(lvrm.stats().redispatched, 0, "{kind:?}: nothing to re-balance");
        assert_eq!(lvrm.vri_count(vr), 2, "{kind:?}: replacement still spawns");

        let mut out = Vec::new();
        drain(&mut lvrm, &mut host.inner, &mut out);
        assert_eq!(
            lvrm.stats().frames_in,
            lvrm.stats().frames_out + lvrm.stats().crash_lost,
            "{kind:?}: survivors' frames all delivered"
        );
        assert_conserved(&lvrm.stats());
        assert_drop_identity(&lvrm);
    }
}

/// The dispatch-drop double-counting regression (satellite of the batched
/// dataplane): the monitor aggregate must equal the live adapters' sum plus
/// the retired carry-over on the burst path, through a crash that retires an
/// adapter with recorded drops, and on the per-frame path.
#[test]
fn dispatch_drop_identity_survives_overflow_and_crash() {
    for kind in queue_kinds() {
        // Burst path: tiny queues, one oversized burst -> bulk-enqueue
        // leftovers are dropped and recorded on both levels.
        let clock = ManualClock::new();
        let config = LvrmConfig {
            data_queue_capacity: 8,
            dead_after_ns: 1_000_000_000_000,
            suspect_after_ns: 500_000_000_000,
            ..chaos_config(kind)
        };
        let mut lvrm = new_lvrm(clock.clone(), config.clone());
        let mut host = RecordingHost::default();
        let _vr = lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);
        let victim = host.spawned[0].vri;

        let mut burst: Vec<Frame> = (0..100).map(|i| frame((i % 200) as u8)).collect();
        lvrm.ingress_batch(&mut burst, &mut host);
        assert!(lvrm.stats().dispatch_drops > 0, "{kind:?}: the burst must overflow");
        assert_drop_identity(&lvrm);

        // Crash the victim while it carries both queued frames and recorded
        // drops: its drops move to the retired bucket, the identity holds.
        let drops_before = lvrm.stats().dispatch_drops;
        host.crash_vri(victim);
        clock.set_ns(1_100_000_000);
        lvrm.maybe_reallocate(1_100_000_000, &mut host);
        if kind == QueueKind::VLink {
            // Overflow drops live on the VR's ring series, not the victim,
            // so nothing moves to the retired bucket when the instance dies.
            assert_eq!(lvrm.stats().retired_dispatch_drops, 0, "{kind:?}");
        } else {
            assert!(
                lvrm.stats().retired_dispatch_drops > 0,
                "{kind:?}: victim's drops are carried"
            );
        }
        assert_drop_identity(&lvrm);

        let mut out = Vec::new();
        drain(&mut lvrm, &mut host, &mut out);
        // Re-dispatch may have overflowed the survivors' tiny queues; that
        // too must stay inside the identity and the conservation total.
        assert!(lvrm.stats().dispatch_drops >= drops_before, "{kind:?}");
        assert_conserved(&lvrm.stats());
        assert_drop_identity(&lvrm);

        // Per-frame path: full queues invalidate the target before dispatch,
        // so refusals surface as no_vri_drops and never double-count.
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let _vr = lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);
        for i in 0..40 {
            lvrm.ingress(frame(i), &mut host);
        }
        if kind == QueueKind::VLink {
            // The ring (4x the per-VRI capacity) takes 32 and refuses 8; a
            // ring refusal is a dispatch drop, never a missing-target drop.
            assert_eq!(lvrm.stats().dispatch_drops, 8, "{kind:?}: ring refusals");
            assert_eq!(lvrm.stats().no_vri_drops, 0, "{kind:?}");
        } else {
            assert_eq!(lvrm.stats().dispatch_drops, 0, "{kind:?}: per-frame never half-accepts");
            assert_eq!(lvrm.stats().no_vri_drops, 24, "{kind:?}: 2 x 8 fit, the rest are refused");
        }
        drain(&mut lvrm, &mut host, &mut out);
        assert_conserved(&lvrm.stats());
        assert_drop_identity(&lvrm);
    }
}

/// Drive the full crash-and-recover script through either the per-frame
/// entry point or batch-of-1 `ingress_batch` calls. Shared by the stat
/// identity test below.
fn run_crash_script(kind: QueueKind, batched: bool) -> (LvrmStats, Vec<String>, usize) {
    let crash_at = 2_000_000_000u64;
    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
    let plan = FaultPlan::new().crash_at(crash_at, 0).stall_at(3_000_000_000, 1);
    let mut host = FaultyHost::new(RecordingHost::with_heartbeats(), plan);
    let _vr = lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

    let mut out = Vec::new();
    for step in 0..=70u64 {
        let t = step * 100_000_000;
        clock.set_ns(t);
        // Two classified frames and one unclassified per step, in a fixed
        // order, fed one frame at a time down either path.
        for (i, f) in
            [frame((step % 200) as u8), frame((step % 100) as u8)]
                .into_iter()
                .chain(std::iter::once(
                    FrameBuilder::new(Ipv4Addr::new(192, 168, 0, 1), Ipv4Addr::new(10, 0, 2, 1))
                        .udp(1, 2, &[]),
                ))
                .enumerate()
        {
            let _ = i;
            if batched {
                let mut one = vec![f];
                lvrm.ingress_batch(&mut one, &mut host);
            } else {
                lvrm.ingress(f, &mut host);
            }
        }
        host.apply(t);
        host.inner.pump();
        lvrm.process_control();
        lvrm.maybe_reallocate(t, &mut host);
        lvrm.poll_egress(&mut out);
    }
    drain(&mut lvrm, &mut host.inner, &mut out);
    let log: Vec<String> = lvrm
        .supervision_log
        .iter()
        .map(|e| format!("{} {:?} {:?} {:?}", e.ts_ns, e.vr, e.vri, e.action))
        .collect();
    assert_conserved(&lvrm.stats());
    assert_drop_identity(&lvrm);
    (lvrm.stats(), log, out.len())
}

/// Batch-of-1 must stay bit-identical to the per-frame path even through an
/// injected crash, a stall, supervisor ticks, reclaim, and re-dispatch — the
/// whole stat block, the supervision log, and the egress count.
#[test]
fn batch_of_one_matches_per_frame_under_injected_faults() {
    for kind in queue_kinds() {
        let (per_frame, log_a, out_a) = run_crash_script(kind, false);
        let (batched, log_b, out_b) = run_crash_script(kind, true);
        assert!(per_frame.vri_deaths >= 2, "{kind:?}: script must kill both targets");
        assert_eq!(per_frame, batched, "{kind:?}: full stat block identical");
        assert_eq!(log_a, log_b, "{kind:?}: identical supervision histories");
        assert_eq!(out_a, out_b, "{kind:?}: identical egress");
    }
}

/// Seeded random fault storms: whatever the plan throws at the monitor —
/// crashes, stalls, resumes, control-loss windows, in any order — once the
/// dust settles every frame is delivered or sits in a named counter.
#[test]
fn randomized_fault_storms_preserve_conservation() {
    for kind in queue_kinds() {
        for &seed in SEEDS {
            let horizon = 8_000_000_000u64;
            let clock = ManualClock::new();
            let config =
                LvrmConfig { allocator: AllocatorKind::Fixed { cores: 3 }, ..chaos_config(kind) };
            let mut lvrm = new_lvrm(clock.clone(), config);
            let plan = FaultPlan::randomized(seed, horizon, 12, 8);
            let mut host = FaultyHost::new(RecordingHost::with_heartbeats(), plan);
            let _vr = lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

            let mut out = Vec::new();
            let mut t = 0u64;
            while t <= horizon {
                clock.set_ns(t);
                let mut burst: Vec<Frame> =
                    (0..4).map(|i| frame(((t / 100_000_000 + i) % 200) as u8)).collect();
                lvrm.ingress_batch(&mut burst, &mut host);
                host.apply(t);
                host.inner.pump();
                lvrm.process_control();
                lvrm.maybe_reallocate(t, &mut host);
                lvrm.poll_egress(&mut out);
                t += 100_000_000;
            }
            // Settle: no new traffic, but stalled instances must still age
            // out, be reaped, and have their queues re-balanced or counted.
            for _ in 0..15 {
                t += 1_000_000_000;
                clock.set_ns(t);
                host.apply(t);
                host.inner.pump();
                lvrm.process_control();
                lvrm.maybe_reallocate(t, &mut host);
                lvrm.poll_egress(&mut out);
            }
            drain(&mut lvrm, &mut host.inner, &mut out);

            let s = &lvrm.stats();
            let snap = lvrm.snapshot();
            let parked: usize =
                snap.iter().flat_map(|vr| vr.vris.iter()).map(|v| v.queue_len).sum();
            assert_eq!(parked, 0, "{kind:?} seed {seed}: settle must drain every queue");
            let deaths = lvrm
                .supervision_log
                .iter()
                .filter(|e| matches!(e.action, SupervisionAction::Died { .. }))
                .count() as u64;
            assert_eq!(deaths, s.vri_deaths, "{kind:?} seed {seed}: every death is logged");
            assert_conserved(s);
            assert_drop_identity(&lvrm);
        }
    }
}
