//! Differential proof of state-compute replication (DESIGN.md §14):
//! dispatching a flow's frames across *all* of a VR's replicas, with per-flow
//! deltas replicated through LVSU batches, must be observably equivalent to
//! pinning the flow on a single VRI — same per-flow books, same conservation
//! identities, under arbitrary interleavings of arrivals, flushes, crashes,
//! replays and fault storms.
//!
//! Three layers, increasingly real:
//!
//!  1. `model_*` — pure-model differential over [`ReplicaLedger`] directly:
//!     N replicas + in-memory fan-out vs one pinned reference ledger. No
//!     queues, no clock, no filesystem: this is the leg miri runs.
//!  2. `monitor_*` — the real [`Lvrm`] with `DispatchMode::Replicated` and a
//!     replicating [`RecordingHost`], compared against a pinned single-VRI
//!     monitor fed the identical frame sequence.
//!  3. `storm_*` — randomized `FaultPlan` chaos across every `QueueKind`
//!     (honouring `LVRM_CHAOS_QUEUE` like the rest of the chaos matrix):
//!     identity (E) must hold on every snapshot, and no replica book may
//!     ever exceed the injected ground truth (folding is never-twice even
//!     when batches are replayed, reordered, or half-lost).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use lvrm_core::{
    decode_batch, AffinityMode, AllocatorKind, CoreId, CoreMap, CoreTopology, DispatchMode,
    FaultPlan, FaultyHost, FlowBook, Lvrm, LvrmConfig, ManualClock, RecordingHost, ReplicaLedger,
    StateUpdate,
};
use lvrm_ipc::QueueKind;
use lvrm_metrics::MetricsSnapshot;
use lvrm_net::flow::Protocol;
use lvrm_net::{FlowKey, Frame, FrameBuilder};
use lvrm_router::VirtualRouter;
use proptest::prelude::*;

const CASES: u32 = if cfg!(miri) { 4 } else { 64 };
const MODEL_OPS: usize = if cfg!(miri) { 40 } else { 400 };

// ---- layer 1: pure-model differential ----------------------------------

fn model_key(n: u8) -> FlowKey {
    FlowKey {
        src: Ipv4Addr::new(10, 0, 1, n),
        dst: Ipv4Addr::new(10, 0, 2, 1),
        src_port: 1000 + n as u16,
        dst_port: 80,
        proto: Protocol::Tcp,
    }
}

/// One interleaving step against the replica set.
#[derive(Clone, Debug)]
enum Op {
    /// A frame of `bytes` for flow `flow` arrives at replica `at` (any-VRI
    /// dispatch: the model does not care which).
    Arrive { at: u8, flow: u8, bytes: u16 },
    /// Replica `at` flushes its pending deltas; the "monitor" fans the
    /// batch out to every sibling.
    Flush { at: u8 },
    /// Replica `at` crashes: pending deltas die unflushed.
    Crash { at: u8 },
    /// A previously fanned-out batch is delivered to replica `at` again
    /// (queue retry / duplicated relay). Must fold to nothing.
    Replay { at: u8, which: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u8>(), 0u8..6, 1u16..1500).prop_map(|(at, flow, bytes)| Op::Arrive {
            at,
            flow,
            bytes
        }),
        2 => any::<u8>().prop_map(|at| Op::Flush { at }),
        1 => any::<u8>().prop_map(|at| Op::Crash { at }),
        2 => (any::<u8>(), any::<u16>()).prop_map(|(at, which)| Op::Replay { at, which }),
    ]
}

/// The model "monitor": fans a flushed batch out to all siblings, charging
/// the same identity-(E) ledger the real monitor keeps. `lossy_mask` drops
/// the relay to sibling `i` when bit `i` is set (a full control queue).
struct ModelFanout {
    emitted: u64,
    folded: u64,
    lost: u64,
    /// Every batch ever fanned out, for replay delivery.
    history: Vec<(u32, Vec<StateUpdate>)>,
}

impl ModelFanout {
    fn new() -> ModelFanout {
        ModelFanout { emitted: 0, folded: 0, lost: 0, history: Vec::new() }
    }

    fn fan_out(&mut self, batch: &[u8], replicas: &mut [ReplicaLedger], lossy_mask: u32) {
        let (origin, updates) = decode_batch(batch).expect("model batches are well-formed");
        let k = updates.len() as u64;
        let siblings = replicas.iter().filter(|r| r.origin() != origin).count() as u64;
        self.emitted += k * siblings;
        for (i, r) in replicas.iter_mut().filter(|r| r.origin() != origin).enumerate() {
            if lossy_mask & (1 << i) != 0 {
                self.lost += k;
            } else {
                r.fold_batch(origin, &updates);
                self.folded += k;
            }
        }
        self.history.push((origin, updates));
    }
}

/// Run one interleaving; returns (replicas, reference, fanout).
fn run_model(
    n: usize,
    ops: &[Op],
    lossy: impl Fn(usize) -> u32,
) -> (Vec<ReplicaLedger>, ReplicaLedger, ModelFanout) {
    let mut replicas: Vec<ReplicaLedger> =
        (0..n).map(|i| ReplicaLedger::new(i as u32 + 1)).collect();
    // The pinned reference: one ledger that services *every* frame, exactly
    // what `DispatchMode::Pinned` on a single-VRI VR would do.
    let mut reference = ReplicaLedger::new(0);
    let mut fanout = ModelFanout::new();
    let mut now = 0u64;
    for (step, op) in ops.iter().enumerate() {
        now += 1;
        match *op {
            Op::Arrive { at, flow, bytes } => {
                replicas[at as usize % n].observe(model_key(flow), bytes as u64, now);
                reference.observe(model_key(flow), bytes as u64, now);
            }
            Op::Flush { at } => {
                if let Some(batch) = replicas[at as usize % n].flush() {
                    let mask = lossy(step);
                    fanout.fan_out(&batch, &mut replicas, mask);
                }
            }
            Op::Crash { at } => {
                // The replica process dies and is respawned with empty
                // pending state: whatever it had not flushed is gone.
                replicas[at as usize % n].drop_pending();
            }
            Op::Replay { at, which } => {
                if !fanout.history.is_empty() {
                    let (origin, updates) =
                        fanout.history[which as usize % fanout.history.len()].clone();
                    let r = &mut replicas[at as usize % n];
                    if r.origin() != origin {
                        // Replays are already charged; they must also fold
                        // to nothing (idempotence), checked at the end via
                        // the ground-truth bound.
                        r.fold_batch(origin, &updates);
                    }
                }
            }
        }
    }
    (replicas, reference, fanout)
}

/// Final settle: flush everything and deliver losslessly.
fn settle(replicas: &mut [ReplicaLedger], fanout: &mut ModelFanout) {
    for i in 0..replicas.len() {
        if let Some(batch) = replicas[i].flush() {
            fanout.fan_out(&batch, replicas, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Lossless, crash-free interleavings: after settling, every replica's
    /// books equal the pinned reference's books exactly — frames, bytes and
    /// last-seen all converge, replay deliveries notwithstanding.
    #[test]
    fn model_replicated_books_equal_pinned_reference(
        n in 2usize..5,
        ops in prop::collection::vec(arb_op(), 1..MODEL_OPS),
    ) {
        let ops: Vec<Op> =
            ops.into_iter().filter(|o| !matches!(o, Op::Crash { .. })).collect();
        let (mut replicas, reference, mut fanout) = run_model(n, &ops, |_| 0);
        settle(&mut replicas, &mut fanout);
        for r in &replicas {
            prop_assert_eq!(
                r.books(), reference.books(),
                "replica {} diverged from the pinned reference", r.origin()
            );
        }
        prop_assert_eq!(fanout.emitted, fanout.folded + fanout.lost, "(E) violated");
        prop_assert_eq!(fanout.lost, 0);
    }

    /// With crashes and lossy relays: identity (E) stays exact, and no book
    /// component ever exceeds the reference — lost deltas may leave a
    /// replica behind, but replays and reorders can never push one ahead.
    #[test]
    fn model_lossy_runs_never_overcount_and_keep_identity_e(
        n in 2usize..5,
        ops in prop::collection::vec(arb_op(), 1..MODEL_OPS),
        loss_seed in any::<u32>(),
    ) {
        let (mut replicas, reference, mut fanout) =
            run_model(n, &ops, |step| loss_seed.rotate_left(step as u32) & 0b111);
        settle(&mut replicas, &mut fanout);
        prop_assert_eq!(fanout.emitted, fanout.folded + fanout.lost, "(E) violated");
        for r in &replicas {
            for (key, book) in r.books() {
                let truth = reference.book(key).expect("reference saw every flow");
                prop_assert!(
                    book.frames <= truth.frames && book.bytes <= truth.bytes
                        && book.last_seen_ns <= truth.last_seen_ns,
                    "replica {} overcounted flow {:?}: {:?} > {:?}",
                    r.origin(), key, book, truth
                );
            }
        }
    }

    /// The crashed replica itself stays self-consistent: its own books keep
    /// everything it serviced (state-compute replication loses *replication*,
    /// never local state), and `drop_pending` reports exactly the records
    /// that will never be emitted.
    #[test]
    fn model_crash_loses_replication_not_local_state(
        flows in prop::collection::vec((0u8..6, 1u16..1500), 1..40),
    ) {
        let mut a = ReplicaLedger::new(1);
        let mut expect: HashMap<FlowKey, FlowBook> = HashMap::new();
        for (i, &(flow, bytes)) in flows.iter().enumerate() {
            a.observe(model_key(flow), bytes as u64, i as u64 + 1);
            let e = expect.entry(model_key(flow)).or_default();
            e.frames += 1;
            e.bytes += bytes as u64;
            e.last_seen_ns = i as u64 + 1;
        }
        let distinct = expect.len();
        prop_assert_eq!(a.drop_pending(), distinct, "one pending record per flow");
        prop_assert_eq!(a.books(), &expect);
        prop_assert!(a.flush().is_none(), "nothing left to emit after the crash");
    }
}

// ---- layers 2 & 3: the real monitor ------------------------------------

fn queue_kinds() -> Vec<QueueKind> {
    match std::env::var("LVRM_CHAOS_QUEUE") {
        Ok(want) => vec![want.parse::<QueueKind>().expect("LVRM_CHAOS_QUEUE")],
        Err(_) => QueueKind::ALL.to_vec(),
    }
}

fn new_lvrm(clock: ManualClock, config: LvrmConfig) -> Lvrm<ManualClock> {
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    Lvrm::new(config, cores, clock)
}

fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new(name, routes))
}

fn flow_frame(flow: u8, payload: usize) -> Frame {
    FrameBuilder::new(Ipv4Addr::new(10, 0, 1, flow), Ipv4Addr::new(10, 0, 2, 1)).udp(
        1000 + flow as u16,
        80,
        &vec![0u8; payload],
    )
}

fn c(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counter(name, &[]).unwrap_or(0)
}

fn assert_identity_e(snap: &MetricsSnapshot, ctx: &str) {
    assert_eq!(
        c(snap, "lvrm_repl_updates_emitted_total"),
        c(snap, "lvrm_repl_updates_folded_total") + c(snap, "lvrm_repl_updates_lost_total"),
        "(E) replication identity violated {ctx}"
    );
}

/// Drive `frames` through a monitor with `cores` VRIs in `mode` dispatch;
/// returns (per-VRI ledgers, final snapshot). Pumps every step so nothing
/// overflows: the clean runs must be loss-free to be comparable.
fn drive(
    kind: QueueKind,
    cores: usize,
    mode: DispatchMode,
    frames: &[Frame],
) -> (HashMap<u32, ReplicaLedger>, MetricsSnapshot) {
    let config = LvrmConfig {
        queue_kind: kind,
        allocator: AllocatorKind::Fixed { cores },
        ..Default::default()
    };
    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone(), config);
    let mut host = RecordingHost::with_replication();
    let vr = lvrm.add_vr("dept", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("d"), &mut host);
    lvrm.set_vr_dispatch(vr, mode);

    let mut out = Vec::new();
    for (i, f) in frames.iter().enumerate() {
        clock.set_ns(i as u64 * 1_000_000);
        lvrm.ingress(f.clone(), &mut host);
        host.pump();
        lvrm.process_control();
        lvrm.poll_egress(&mut out);
    }
    // Settle: the last flush still needs its fan-out relayed and folded.
    for _ in 0..4 {
        host.pump();
        lvrm.process_control();
        lvrm.poll_egress(&mut out);
    }
    let snap = lvrm.metrics_snapshot();
    let ledgers = host.ledgers.iter().map(|(id, l)| (id.0, l.clone())).collect();
    (ledgers, snap)
}

/// An "elephant plus mice" frame sequence: flow 1 dominates.
fn elephant_mix(total: usize) -> Vec<Frame> {
    (0..total)
        .map(|i| if i % 3 != 2 { flow_frame(1, 400) } else { flow_frame((i % 5) as u8 + 2, 64) })
        .collect()
}

/// Layer 2: the real monitor, replicated over N, against pinned-on-1 fed
/// the identical frames. Books (frames/bytes) must be identical per flow,
/// on *every* replica; identity (E) exact; clean runs lose nothing.
#[test]
fn monitor_replicated_books_match_pinned_single_vri() {
    for kind in queue_kinds() {
        for cores in [2usize, 4] {
            let frames = elephant_mix(if cfg!(miri) { 30 } else { 300 });
            let (pinned, psnap) = drive(kind, 1, DispatchMode::Pinned, &frames);
            let (replicated, rsnap) = drive(kind, cores, DispatchMode::Replicated, &frames);
            let ctx = format!("(kind {kind:?}, cores {cores})");

            assert_eq!(c(&psnap, "lvrm_dispatch_drops_total"), 0, "clean pinned run {ctx}");
            assert_eq!(c(&rsnap, "lvrm_dispatch_drops_total"), 0, "clean replicated run {ctx}");
            assert_identity_e(&psnap, &ctx);
            assert_identity_e(&rsnap, &ctx);
            assert_eq!(c(&rsnap, "lvrm_repl_updates_lost_total"), 0, "clean run {ctx}");
            assert!(
                c(&rsnap, "lvrm_repl_updates_emitted_total") > 0,
                "replicated run must actually replicate {ctx}"
            );

            let reference =
                pinned.values().next().expect("pinned run has exactly one ledger").books();
            assert_eq!(replicated.len(), cores, "one ledger per replica {ctx}");
            for (origin, ledger) in &replicated {
                assert_eq!(
                    ledger.books().len(),
                    reference.len(),
                    "replica {origin} is missing flows {ctx}"
                );
                for (key, truth) in reference {
                    let book = ledger.book(key).expect("flow present on every replica");
                    assert_eq!(
                        (book.frames, book.bytes),
                        (truth.frames, truth.bytes),
                        "replica {origin} diverged on {key:?} {ctx}"
                    );
                }
            }
            // Every sibling converged to the same books, timestamps included.
            let mut iter = replicated.values();
            let first = iter.next().unwrap().books();
            for other in iter {
                assert_eq!(first, other.books(), "siblings diverged {ctx}");
            }
        }
    }
}

/// Flipping a VR to replicated mid-stream keeps both identities and the
/// sibling convergence property for traffic from the flip onward.
#[test]
fn monitor_mid_stream_flip_to_replicated_is_safe() {
    for kind in queue_kinds() {
        let config = LvrmConfig {
            queue_kind: kind,
            allocator: AllocatorKind::Fixed { cores: 2 },
            ..Default::default()
        };
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::with_replication();
        let vr =
            lvrm.add_vr("dept", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("d"), &mut host);
        let mut out = Vec::new();
        let frames = elephant_mix(if cfg!(miri) { 20 } else { 120 });
        for (i, f) in frames.iter().enumerate() {
            if i == frames.len() / 2 {
                lvrm.set_vr_dispatch(vr, DispatchMode::Replicated);
            }
            clock.set_ns(i as u64 * 1_000_000);
            lvrm.ingress(f.clone(), &mut host);
            host.pump();
            lvrm.process_control();
            lvrm.poll_egress(&mut out);
            assert_identity_e(&lvrm.metrics_snapshot(), &format!("(kind {kind:?}, step {i})"));
        }
        for _ in 0..4 {
            host.pump();
            lvrm.process_control();
            lvrm.poll_egress(&mut out);
        }
        let snap = lvrm.metrics_snapshot();
        assert_identity_e(&snap, &format!("(kind {kind:?}, settled)"));
        assert!(c(&snap, "lvrm_repl_updates_emitted_total") > 0, "flip took effect {kind:?}");
    }
}

/// Layer 3: randomized fault storms (crashes, stalls, lossy control) with
/// replicated dispatch, across the queue-kind matrix. Identity (E) must
/// hold on every snapshot, and no surviving ledger may ever exceed the
/// injected per-flow ground truth — at-most-once folding under chaos.
fn storm(kind: QueueKind, seed: u64) {
    const STEPS: u64 = if cfg!(miri) { 8 } else { 30 };
    let horizon = STEPS * 100_000_000;
    let config = LvrmConfig {
        queue_kind: kind,
        allocator: AllocatorKind::Fixed { cores: 3 },
        supervision: true,
        ..Default::default()
    };
    let clock = ManualClock::new();
    let mut lvrm = new_lvrm(clock.clone(), config);
    let plan = FaultPlan::randomized(seed, horizon, 6, 8);
    let inner = RecordingHost { heartbeats: true, replicate: true, ..Default::default() };
    let mut host = FaultyHost::new(inner, plan);
    let vr = lvrm.add_vr("dept", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("d"), &mut host);
    lvrm.set_vr_dispatch(vr, DispatchMode::Replicated);

    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        rng ^= rng >> 30;
        rng = rng.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        rng ^= rng >> 27;
        rng
    };

    let mut injected: HashMap<FlowKey, FlowBook> = HashMap::new();
    let mut out = Vec::new();
    for step in 0..=STEPS {
        let t = step * 100_000_000;
        clock.set_ns(t);
        let burst = (next() % 24) as usize;
        for _ in 0..burst {
            let flow = (next() % 6) as u8;
            let f = flow_frame(flow, 64 + (next() % 512) as usize);
            let key = FlowKey::from_frame(&f).expect("udp frame has a flow key");
            let e = injected.entry(key).or_default();
            e.frames += 1;
            e.bytes += f.len() as u64;
            lvrm.ingress(f, &mut host);
        }
        host.apply(t);
        host.inner.pump();
        lvrm.process_control();
        lvrm.maybe_reallocate(t, &mut host);
        lvrm.poll_egress(&mut out);
        assert_identity_e(
            &lvrm.metrics_snapshot(),
            &format!("(kind {kind:?}, seed {seed}, step {step})"),
        );
    }
    loop {
        let processed = host.inner.pump();
        lvrm.process_control();
        let egress = lvrm.poll_egress(&mut out);
        if processed == 0 && egress == 0 {
            break;
        }
    }
    let ctx = format!("(kind {kind:?}, seed {seed}, settled)");
    assert_identity_e(&lvrm.metrics_snapshot(), &ctx);

    // At-most-once folding: chaos may lose updates (replicas fall behind)
    // but no interleaving of crashes, respawns, relays and retries may ever
    // count a frame twice anywhere.
    for (vri, ledger) in &host.inner.ledgers {
        for (key, book) in ledger.books() {
            let truth = injected.get(key).expect("ledgers only hold injected flows");
            assert!(
                book.frames <= truth.frames && book.bytes <= truth.bytes,
                "ledger {vri:?} overcounted {key:?}: {book:?} > {truth:?} {ctx}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 2 } else { 8 }))]

    #[test]
    fn storm_replication_invariants_hold_under_chaos(seed in any::<u64>()) {
        for kind in queue_kinds() {
            storm(kind, seed);
        }
    }
}

/// Pinned regression seeds, mirroring the metrics-invariants convention.
#[test]
fn storm_replication_invariants_hold_for_pinned_seeds() {
    for kind in queue_kinds() {
        for seed in [7, 42, 1337] {
            storm(kind, seed);
        }
    }
}
