//! Model-based property tests around flow affinity: the open-addressing
//! flow table must behave exactly like a `HashMap` with timestamps under any
//! operation sequence (within capacity), including the backshift deletion
//! path — and the full monitor must keep flows pinned to a single VRI even
//! when the supervisor kills an instance and re-balances its queue.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use lvrm_core::flowtable::FlowTable;
use lvrm_core::{
    AffinityMode, AllocatorKind, CoreId, CoreMap, CoreTopology, Lvrm, LvrmConfig, ManualClock,
    RecordingHost, VriId,
};
use lvrm_net::flow::{FlowKey, Protocol};
use lvrm_net::{Frame, FrameBuilder};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert { key: u8, vri: u8 },
    Find { key: u8 },
    PurgeVri { vri: u8 },
    Advance { by: u32 },
}

fn key(n: u8) -> FlowKey {
    FlowKey {
        src: Ipv4Addr::new(10, 0, 1, n),
        dst: Ipv4Addr::new(10, 0, 2, 1),
        src_port: 1000 + n as u16,
        dst_port: 80,
        proto: Protocol::Udp,
    }
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), 0u8..6).prop_map(|(key, vri)| Op::Insert { key, vri }),
            any::<u8>().prop_map(|key| Op::Find { key }),
            (0u8..6).prop_map(|vri| Op::PurgeVri { vri }),
            (1u32..1000).prop_map(|by| Op::Advance { by }),
        ],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn matches_hashmap_model(script in ops()) {
        const TIMEOUT: u64 = 10_000;
        // Capacity 512 >> 256 distinct keys: overflow never muddies the model.
        let mut table = FlowTable::new(512, TIMEOUT);
        let mut model: HashMap<u8, (VriId, u64)> = HashMap::new();
        let mut now: u64 = 0;
        for op in script {
            match op {
                Op::Insert { key: k, vri } => {
                    let ok = table.insert(key(k), VriId(vri as u32), now);
                    prop_assert!(ok, "insert under capacity must succeed");
                    model.insert(k, (VriId(vri as u32), now));
                }
                Op::Find { key: k } => {
                    let got = table.find_and_touch(&key(k), now);
                    let expect = match model.get(&k) {
                        Some((vri, seen)) if now - seen <= TIMEOUT => Some(*vri),
                        _ => None,
                    };
                    prop_assert_eq!(got, expect, "find({}) at t={}", k, now);
                    match got {
                        Some(_) => {
                            model.get_mut(&k).unwrap().1 = now; // touched
                        }
                        None => {
                            model.remove(&k); // expired entries are evicted
                        }
                    }
                }
                Op::PurgeVri { vri } => {
                    table.purge_vri(VriId(vri as u32));
                    model.retain(|_, (v, _)| *v != VriId(vri as u32));
                }
                Op::Advance { by } => now += by as u64,
            }
        }
        // Full sweep: every live model entry must still resolve.
        for (k, (vri, seen)) in &model {
            if now - seen <= TIMEOUT {
                prop_assert_eq!(table.find_and_touch(&key(*k), now), Some(*vri));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Differential aging: incremental sweep vs the old full-scan semantics.

/// The pre-incremental reference: a `HashMap` aged by an eager full scan.
/// [`FlowTable::age_step`] replaced exactly this behavior with bounded work
/// per tick, so the two must stay observation-equivalent — identical
/// affinity answers at every step, identical live sets after a complete
/// sweep, identical survivors across checkpoint/restore.
struct ScanTable {
    map: HashMap<u8, (VriId, u64)>,
    timeout_ns: u64,
}

impl ScanTable {
    fn live(&self, k: u8, now: u64) -> bool {
        self.map.get(&k).is_some_and(|(_, seen)| now.saturating_sub(*seen) <= self.timeout_ns)
    }

    fn find_and_touch(&mut self, k: u8, now: u64) -> Option<VriId> {
        if self.live(k, now) {
            let e = self.map.get_mut(&k).unwrap();
            e.1 = now;
            Some(e.0)
        } else {
            // Lazy-probe eviction, exactly like the real table's probe path.
            self.map.remove(&k);
            None
        }
    }

    /// The old 1 s tick: one full scan, every expired entry evicted.
    fn age_full_scan(&mut self, now: u64) {
        let timeout = self.timeout_ns;
        self.map.retain(|_, (_, seen)| now.saturating_sub(*seen) <= timeout);
    }
}

#[derive(Clone, Debug)]
enum AgeOp {
    Insert {
        key: u8,
        vri: u8,
    },
    Find {
        key: u8,
    },
    /// Partial incremental sweep — must never change observable answers.
    AgeStep {
        budget: u8,
    },
    /// Complete sweep on both tables, then live sets must match exactly.
    FullSweep,
    PurgeVri {
        vri: u8,
    },
    /// Export the real table, rebuild a fresh one from the checkpoint.
    CheckpointRestore,
    Advance {
        by: u32,
    },
}

#[cfg(not(miri))]
const AGE_CASES: u32 = 192;
#[cfg(miri)]
const AGE_CASES: u32 = 2;
#[cfg(not(miri))]
const AGE_STEPS: usize = 200;
#[cfg(miri)]
const AGE_STEPS: usize = 24;

fn age_ops() -> impl Strategy<Value = Vec<AgeOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), 0u8..6).prop_map(|(key, vri)| AgeOp::Insert { key, vri }),
            any::<u8>().prop_map(|key| AgeOp::Find { key }),
            (1u8..65).prop_map(|budget| AgeOp::AgeStep { budget }),
            Just(AgeOp::FullSweep),
            (0u8..6).prop_map(|vri| AgeOp::PurgeVri { vri }),
            Just(AgeOp::CheckpointRestore),
            (1u32..8000).prop_map(|by| AgeOp::Advance { by }),
        ],
        0..AGE_STEPS,
    )
}

/// Snapshot the physical table as `key-octet -> vri` (inverse of `key()`).
fn table_contents(table: &FlowTable) -> HashMap<u8, VriId> {
    table.entries().map(|(k, vri, _)| (k.src.octets()[3], vri)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(AGE_CASES))]

    /// The incremental-aging table is observation-equivalent to the old
    /// scan-based table under any operation sequence: same affinity
    /// answers at every probe, same live set after every complete sweep
    /// (⇒ the same entries were evicted), and checkpoint/restore preserves
    /// exactly the survivors.
    #[test]
    fn incremental_aging_matches_full_scan_reference(script in age_ops()) {
        const TIMEOUT: u64 = 10_000;
        const CAPACITY: usize = 512; // >> 256 keys: overflow never muddies the model
        let mut table = FlowTable::new(CAPACITY, TIMEOUT);
        let mut model = ScanTable { map: HashMap::new(), timeout_ns: TIMEOUT };
        let mut now: u64 = 0;
        for op in script {
            match op {
                AgeOp::Insert { key: k, vri } => {
                    prop_assert!(table.insert(key(k), VriId(vri as u32), now));
                    model.map.insert(k, (VriId(vri as u32), now));
                }
                AgeOp::Find { key: k } => {
                    prop_assert_eq!(
                        table.find_and_touch(&key(k), now),
                        model.find_and_touch(k, now),
                        "affinity answer diverged for {} at t={}", k, now
                    );
                }
                AgeOp::AgeStep { budget } => {
                    // Bounded partial work: evicts only expired entries, so
                    // observable answers cannot change. No model action.
                    table.age_step(now, budget as usize);
                }
                AgeOp::FullSweep => {
                    // Two budget=capacity calls guarantee a complete lap
                    // even when backshift relocates entries behind the
                    // cursor mid-pass.
                    table.age_step(now, CAPACITY);
                    table.age_step(now, CAPACITY);
                    model.age_full_scan(now);
                    let live: HashMap<u8, VriId> =
                        model.map.iter().map(|(k, (v, _))| (*k, *v)).collect();
                    prop_assert_eq!(
                        table_contents(&table), live,
                        "live sets diverged after a complete sweep at t={}", now
                    );
                }
                AgeOp::PurgeVri { vri } => {
                    table.purge_vri(VriId(vri as u32));
                    model.map.retain(|_, (v, _)| *v != VriId(vri as u32));
                }
                AgeOp::CheckpointRestore => {
                    // The warm-restart surface: export every stored entry
                    // with its timestamp, import into a fresh table. The
                    // aging cursor is NOT checkpointed state — a restored
                    // table restarts its sweep from slot 0 — so
                    // equivalence must hold regardless of cursor position.
                    let dump: Vec<_> = table.entries().collect();
                    let mut restored = FlowTable::new(CAPACITY, TIMEOUT);
                    for (k, vri, seen) in &dump {
                        prop_assert!(restored.insert(*k, *vri, *seen));
                    }
                    // Import may reclaim the slot of an already-expired
                    // entry (a newer entry's timestamp proves it dead) —
                    // that only sheds corpses. Every *live* flow must
                    // survive the round trip with its VRI pinned.
                    let live_of = |it: &mut dyn Iterator<Item = (FlowKey, VriId, u64)>| {
                        it.filter(|(_, _, seen)| now.saturating_sub(*seen) <= TIMEOUT)
                            .map(|(k, v, _)| (k.src.octets()[3], v))
                            .collect::<HashMap<u8, VriId>>()
                    };
                    prop_assert_eq!(
                        live_of(&mut restored.entries()),
                        live_of(&mut dump.iter().copied()),
                        "restore lost live flows"
                    );
                    table = restored;
                }
                AgeOp::Advance { by } => now += by as u64,
            }
        }
        // Endgame: one complete sweep on both sides must converge them.
        table.age_step(now, CAPACITY);
        table.age_step(now, CAPACITY);
        model.age_full_scan(now);
        let live: HashMap<u8, VriId> = model.map.iter().map(|(k, (v, _))| (*k, *v)).collect();
        prop_assert_eq!(table_contents(&table), live, "final live sets diverged");
        // And every survivor still answers with its pinned VRI.
        for (k, (vri, _)) in model.map.clone() {
            prop_assert_eq!(table.find_and_touch(&key(k), now), Some(vri));
        }
    }
}

/// One frame of flow `f`: distinct source address and port per flow, all
/// inside the VR's subnet.
fn flow_frame(f: u8) -> Frame {
    FrameBuilder::new(Ipv4Addr::new(10, 0, 1, f + 1), Ipv4Addr::new(10, 0, 2, 1)).udp(
        1000 + f as u16,
        80,
        &[],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Supervisor re-dispatch preserves flow affinity: after a VRI is killed
    /// and its parked frames are re-balanced through the flow-based
    /// balancer, no flow's frames may end up split across two live VRIs —
    /// including frames that arrive after the recovery.
    #[test]
    fn redispatch_after_vri_kill_preserves_flow_affinity(
        pre in prop::collection::vec(0u8..8, 1..120),
        post in prop::collection::vec(0u8..8, 0..60),
        victim_idx in 0usize..3,
    ) {
        let clock = ManualClock::new();
        let config = LvrmConfig {
            flow_based: true,
            allocator: AllocatorKind::Fixed { cores: 3 },
            supervision: true,
            // Only detach-detection: this harness pumps no heartbeats, so
            // the silence timers must never fire on the survivors.
            suspect_after_ns: 500_000_000_000,
            dead_after_ns: 1_000_000_000_000,
            ..Default::default()
        };
        let cores =
            CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
        let mut lvrm = Lvrm::new(config, cores, clock.clone());
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], {
            let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
            Box::new(lvrm_router::FastVr::new("a", routes))
        }, &mut host);
        prop_assert_eq!(lvrm.vri_count(vr), 3);

        // Park the pre-crash traffic (nothing services it), then yank one
        // instance and let the supervisor reclaim and re-balance its queue.
        for &f in &pre {
            lvrm.ingress(flow_frame(f), &mut host);
        }
        let victim = host.spawned[victim_idx].vri;
        host.crash_vri(victim);
        clock.set_ns(1_100_000_000);
        lvrm.maybe_reallocate(1_100_000_000, &mut host);
        prop_assert_eq!(lvrm.stats().vri_deaths, 1);
        prop_assert_eq!(lvrm.vri_count(vr), 3, "replacement spawned");

        // Post-recovery traffic must follow wherever each flow now lives.
        for &f in &post {
            lvrm.ingress(flow_frame(f), &mut host);
        }

        // Read every live instance's incoming queue and map flow -> VRIs.
        let mut seen: HashMap<u8, Vec<VriId>> = HashMap::new();
        let mut drained = 0u64;
        for (vri, endpoint, _) in &mut host.endpoints {
            let mut frames = Vec::new();
            while endpoint.data_rx.try_recv_batch(&mut frames, usize::MAX) > 0 {}
            drained += frames.len() as u64;
            for fr in &frames {
                let f = fr.src_ip().unwrap().octets()[3] - 1;
                let owners = seen.entry(f).or_default();
                if !owners.contains(vri) {
                    owners.push(*vri);
                }
            }
        }
        for (f, owners) in &seen {
            prop_assert_eq!(
                owners.len(),
                1,
                "flow {} split across {:?} after recovery",
                f,
                owners
            );
        }
        // And the recovery lost nothing: every admitted frame is parked in
        // exactly one live queue.
        prop_assert_eq!(lvrm.stats().frames_in, (pre.len() + post.len()) as u64);
        prop_assert_eq!(drained, lvrm.stats().frames_in);
        prop_assert_eq!(lvrm.stats().crash_lost, 0);
    }
}
