//! Model-based property test: the open-addressing flow table must behave
//! exactly like a `HashMap` with timestamps under any operation sequence
//! (within capacity), including the backshift deletion path.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use lvrm_core::flowtable::FlowTable;
use lvrm_core::VriId;
use lvrm_net::flow::{FlowKey, Protocol};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert { key: u8, vri: u8 },
    Find { key: u8 },
    PurgeVri { vri: u8 },
    Advance { by: u32 },
}

fn key(n: u8) -> FlowKey {
    FlowKey {
        src: Ipv4Addr::new(10, 0, 1, n),
        dst: Ipv4Addr::new(10, 0, 2, 1),
        src_port: 1000 + n as u16,
        dst_port: 80,
        proto: Protocol::Udp,
    }
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), 0u8..6).prop_map(|(key, vri)| Op::Insert { key, vri }),
            any::<u8>().prop_map(|key| Op::Find { key }),
            (0u8..6).prop_map(|vri| Op::PurgeVri { vri }),
            (1u32..1000).prop_map(|by| Op::Advance { by }),
        ],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn matches_hashmap_model(script in ops()) {
        const TIMEOUT: u64 = 10_000;
        // Capacity 512 >> 256 distinct keys: overflow never muddies the model.
        let mut table = FlowTable::new(512, TIMEOUT);
        let mut model: HashMap<u8, (VriId, u64)> = HashMap::new();
        let mut now: u64 = 0;
        for op in script {
            match op {
                Op::Insert { key: k, vri } => {
                    let ok = table.insert(key(k), VriId(vri as u32), now);
                    prop_assert!(ok, "insert under capacity must succeed");
                    model.insert(k, (VriId(vri as u32), now));
                }
                Op::Find { key: k } => {
                    let got = table.find_and_touch(&key(k), now);
                    let expect = match model.get(&k) {
                        Some((vri, seen)) if now - seen <= TIMEOUT => Some(*vri),
                        _ => None,
                    };
                    prop_assert_eq!(got, expect, "find({}) at t={}", k, now);
                    match got {
                        Some(_) => {
                            model.get_mut(&k).unwrap().1 = now; // touched
                        }
                        None => {
                            model.remove(&k); // expired entries are evicted
                        }
                    }
                }
                Op::PurgeVri { vri } => {
                    table.purge_vri(VriId(vri as u32));
                    model.retain(|_, (v, _)| *v != VriId(vri as u32));
                }
                Op::Advance { by } => now += by as u64,
            }
        }
        // Full sweep: every live model entry must still resolve.
        for (k, (vri, seen)) in &model {
            if now - seen <= TIMEOUT {
                prop_assert_eq!(table.find_and_touch(&key(*k), now), Some(*vri));
            }
        }
    }
}
