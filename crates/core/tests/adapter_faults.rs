//! Chaos suite for the *adapter* supervisor: seeded, time-addressed faults
//! (crash, stall, error burst, refused sends) injected into a supervised
//! NIC chain feeding a live monitor, across every `QueueKind`. The
//! acceptance bar mirrors the VRI chaos suite: the adapter layer may never
//! lose a frame silently — everything polled is conserved through the
//! monitor, everything the monitor emits is either on the wire, parked in
//! the retry queue, or visibly counted in `tx_drops`.
//!
//! Set `LVRM_CHAOS_QUEUE` to one of `lamport` / `fastforward` / `mutex` / `vlink` to
//! restrict the sweep (the CI matrix does this); unset runs all three.

use std::net::Ipv4Addr;

use lvrm_core::{
    AdapterError, AdapterState, AdapterSupervisorConfig, AffinityMode, AllocatorKind, CoreId,
    CoreMap, CoreTopology, FaultPlan, FaultySocket, Lvrm, LvrmConfig, LvrmStats, ManualClock,
    MemTraceAdapter, RecordingHost, SendRejected, SocketAdapter, SocketKind, SupervisedAdapter,
};
use lvrm_ipc::QueueKind;
use lvrm_net::{Frame, Trace, TraceSpec};

const BATCH: usize = 32;
const STEP_NS: u64 = 100_000_000; // 100 ms
const STEPS: u64 = if cfg!(miri) { 20 } else { 60 };
const SEEDS: &[u64] = if cfg!(miri) { &[7] } else { &[7, 42, 1337] };

fn queue_kinds() -> Vec<QueueKind> {
    match std::env::var("LVRM_CHAOS_QUEUE") {
        Ok(want) => vec![want.parse::<QueueKind>().expect("LVRM_CHAOS_QUEUE")],
        Err(_) => QueueKind::ALL.to_vec(),
    }
}

fn chaos_config(kind: QueueKind) -> LvrmConfig {
    LvrmConfig {
        queue_kind: kind,
        allocator: AllocatorKind::Fixed { cores: 2 },
        supervision: true,
        ..Default::default()
    }
}

fn new_lvrm(clock: ManualClock, config: LvrmConfig) -> Lvrm<ManualClock> {
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    Lvrm::new(config, cores, clock)
}

/// Every classified frame must come back out, so the VR routes everything.
fn routed_vr(name: &str) -> Box<dyn lvrm_router::VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new(name, routes))
}

/// Trace whose frames land in the test VR's 10.0.1.0/24 subnet (the
/// `TraceSpec` default source range).
fn mem(frames: u64) -> MemTraceAdapter {
    MemTraceAdapter::new(Trace::generate(&TraceSpec::new(84, 8)), frames)
}

/// Tight thresholds so faults walk the state machine inside a short run;
/// a retry deadline far beyond the horizon so no frame can time out behind
/// the assertions' back (deadline expiry has its own unit tests).
fn sup_cfg() -> AdapterSupervisorConfig {
    AdapterSupervisorConfig {
        error_threshold: 2,
        dead_threshold: 4,
        reopen_backoff_ns: 100_000_000,
        reopen_backoff_max_ns: 1_000_000_000,
        egress_retry_deadline_ns: 3_600_000_000_000,
    }
}

fn assert_conserved(s: &LvrmStats) {
    assert_eq!(
        s.frames_in,
        s.frames_out
            + s.unclassified
            + s.dispatch_drops
            + s.no_vri_drops
            + s.shrink_lost
            + s.crash_lost
            + s.quarantined_drops
            + s.shed_early,
        "conservation identity violated: {s:?}"
    );
}

/// One 100 ms simulation step: advance the supervisor clock (firing due
/// plan events), poll a burst off the NIC into the monitor, run the
/// control plane, and push egress back through the NIC. Returns frames
/// polled this step.
fn step(
    t: u64,
    clock: &ManualClock,
    lvrm: &mut Lvrm<ManualClock>,
    host: &mut RecordingHost,
    nic: &mut SupervisedAdapter,
) -> usize {
    clock.set_ns(t);
    nic.tick(t);
    let mut burst: Vec<Frame> = Vec::new();
    let polled = nic.poll_batch(&mut burst, BATCH).unwrap_or(0);
    if polled > 0 {
        lvrm.ingress_batch(&mut burst, host);
    }
    host.pump();
    lvrm.process_control();
    lvrm.maybe_reallocate(t, host);
    let mut egress: Vec<Frame> = Vec::new();
    lvrm.poll_egress(&mut egress);
    let _ = nic.send_batch(&mut egress);
    polled
}

/// Pump until nothing moves anywhere: VRI queues, egress, and the NIC
/// retry queue must all run dry (small time steps so retry flushes fire).
fn settle(
    mut t: u64,
    clock: &ManualClock,
    lvrm: &mut Lvrm<ManualClock>,
    host: &mut RecordingHost,
    nic: &mut SupervisedAdapter,
) {
    for _ in 0..400 {
        clock.set_ns(t);
        let moved = host.pump();
        lvrm.process_control();
        let mut egress: Vec<Frame> = Vec::new();
        lvrm.poll_egress(&mut egress);
        let emitted = egress.len();
        let _ = nic.send_batch(&mut egress);
        let retried = nic.tick(t);
        t += 10_000_000;
        if moved == 0 && emitted == 0 && retried == 0 && nic.retry_pending() == 0 {
            return;
        }
    }
    panic!("pipeline failed to settle: {} retry frames pending", nic.retry_pending());
}

/// The adapter-layer conservation bar: everything the NIC delivered is in
/// the monitor's books, everything the monitor emitted reached the wire.
fn assert_no_unaccounted(lvrm: &Lvrm<ManualClock>, nic: &SupervisedAdapter, ctx: &str) {
    let s = lvrm.stats();
    assert_eq!(s.frames_in, nic.rx_count(), "{ctx}: polled frames must all enter the monitor");
    assert_eq!(s.frames_out, s.frames_in, "{ctx}: an all-routing VR forwards everything");
    assert_eq!(nic.tx_count(), s.frames_out, "{ctx}: every egress frame must reach the wire");
    assert_eq!(nic.tx_drops, 0, "{ctx}: no egress frame may be lost");
    assert_eq!(nic.retry_pending(), 0, "{ctx}: retry queue must be drained");
    assert_conserved(&s);
}

fn subnet() -> [(Ipv4Addr, u8); 1] {
    [(Ipv4Addr::new(10, 0, 1, 0), 24)]
}

/// The acceptance scenario: the NIC crashes mid-burst. The supervisor must
/// declare it dead on the next poll, revive it via reopen, and resume
/// delivery within one reallocation tick — with zero unaccounted frames.
#[test]
fn adapter_crash_mid_burst_recovers_within_one_tick() {
    for kind in queue_kinds() {
        let crash_at = 2_000_000_000u64;
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
        let mut host = RecordingHost::with_heartbeats();
        lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

        let plan = FaultPlan::new().crash_adapter_at(crash_at);
        let faulty = FaultySocket::with_plan(mem(1_000_000), &plan);
        let mut nic = SupervisedAdapter::new(Box::new(faulty), sup_cfg());

        let mut first_delivery_after_crash = u64::MAX;
        for s in 0..=STEPS {
            let t = s * STEP_NS;
            let polled = step(t, &clock, &mut lvrm, &mut host, &mut nic);
            if t > crash_at && polled > 0 && first_delivery_after_crash == u64::MAX {
                first_delivery_after_crash = t;
            }
        }
        settle(STEPS * STEP_NS, &clock, &mut lvrm, &mut host, &mut nic);

        assert_eq!(nic.reopens, 1, "{kind:?}: the crash must be healed by exactly one reopen");
        assert_eq!(nic.state(), AdapterState::Healthy, "{kind:?}");
        assert!(
            first_delivery_after_crash <= crash_at + 1_000_000_000,
            "{kind:?}: delivery must resume within one reallocation tick, \
             first frames {} ms after the crash",
            (first_delivery_after_crash.saturating_sub(crash_at)) / 1_000_000
        );
        assert_no_unaccounted(&lvrm, &nic, "crash");
    }
}

/// A stalled NIC (ops hang, no fatal error) must ride the consecutive-fault
/// ladder to `Dead` and be revived by the immediate reopen.
#[test]
fn adapter_stall_is_declared_dead_then_reopened() {
    for kind in queue_kinds() {
        let stall_at = 2_000_000_000u64;
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
        let mut host = RecordingHost::with_heartbeats();
        lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

        let plan = FaultPlan::new().stall_adapter_at(stall_at);
        let faulty = FaultySocket::with_plan(mem(1_000_000), &plan);
        let mut nic = SupervisedAdapter::new(Box::new(faulty), sup_cfg());

        let mut first_delivery_after_stall = u64::MAX;
        for s in 0..=STEPS {
            let t = s * STEP_NS;
            let polled = step(t, &clock, &mut lvrm, &mut host, &mut nic);
            if t > stall_at && polled > 0 && first_delivery_after_stall == u64::MAX {
                first_delivery_after_stall = t;
            }
        }
        settle(STEPS * STEP_NS, &clock, &mut lvrm, &mut host, &mut nic);

        assert_eq!(nic.reopens, 1, "{kind:?}: stall must end in a reopen");
        // dead_threshold polls at one per step, then the reopen: well under
        // one reallocation tick.
        assert!(
            first_delivery_after_stall <= stall_at + 1_000_000_000,
            "{kind:?}: stall recovery took {} ms",
            (first_delivery_after_stall.saturating_sub(stall_at)) / 1_000_000
        );
        assert_no_unaccounted(&lvrm, &nic, "stall");
    }
}

/// A stall that resumes on its own (plan `Resume` event) must only degrade
/// the adapter — no reopen, no failover, nothing lost.
#[test]
fn adapter_stall_with_resume_only_degrades() {
    for kind in queue_kinds() {
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
        let mut host = RecordingHost::with_heartbeats();
        lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

        // Two failed polls (100 ms steps) before the resume fires: crosses
        // error_threshold=2 into Degraded, stays short of dead_threshold=4.
        let plan =
            FaultPlan::new().stall_adapter_at(2_000_000_000).resume_adapter_at(2_250_000_000);
        let faulty = FaultySocket::with_plan(mem(1_000_000), &plan);
        let mut nic = SupervisedAdapter::new(Box::new(faulty), sup_cfg());

        let mut saw_degraded = false;
        for s in 0..=STEPS {
            let t = s * STEP_NS;
            step(t, &clock, &mut lvrm, &mut host, &mut nic);
            saw_degraded |= nic.state() == AdapterState::Degraded;
        }
        settle(STEPS * STEP_NS, &clock, &mut lvrm, &mut host, &mut nic);

        assert!(saw_degraded, "{kind:?}: the stall window must be visible as Degraded");
        assert_eq!(nic.state(), AdapterState::Healthy, "{kind:?}");
        assert_eq!(nic.reopens, 0, "{kind:?}: a self-healing stall needs no reopen");
        assert_eq!(nic.failovers, 0, "{kind:?}");
        assert_no_unaccounted(&lvrm, &nic, "stall+resume");
    }
}

/// An error burst damages frames at the NIC edge. Damaged frames are
/// excluded from `rx_count` by the fault wrapper, so the books still
/// balance: everything *delivered* is conserved.
#[test]
fn adapter_error_burst_degrades_but_conserves_delivered_frames() {
    for kind in queue_kinds() {
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
        let mut host = RecordingHost::with_heartbeats();
        lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

        let burst_len = 10u64;
        let plan = FaultPlan::new().adapter_error_burst_at(2_000_000_000, burst_len);
        let faulty = FaultySocket::with_plan(mem(1_000_000), &plan);
        let mut nic = SupervisedAdapter::new(Box::new(faulty), sup_cfg());

        for s in 0..=STEPS {
            step(s * STEP_NS, &clock, &mut lvrm, &mut host, &mut nic);
        }
        settle(STEPS * STEP_NS, &clock, &mut lvrm, &mut host, &mut nic);

        // Consecutive damaged frames each error the head of one batch poll.
        assert_eq!(nic.rx_errors, burst_len, "{kind:?}: every damaged frame surfaces as a fault");
        assert_eq!(nic.state(), AdapterState::Healthy, "{kind:?}: the burst must clear");
        assert_no_unaccounted(&lvrm, &nic, "error burst");
    }
}

/// Delegating wrapper whose `reopen` always fails — models a NIC that is
/// gone for good, forcing the supervisor onto the standby chain.
struct NoReopen<S>(S);

impl<S: SocketAdapter> SocketAdapter for NoReopen<S> {
    fn poll(&mut self) -> Result<Frame, AdapterError> {
        self.0.poll()
    }
    fn poll_batch(&mut self, out: &mut Vec<Frame>, budget: usize) -> Result<usize, AdapterError> {
        self.0.poll_batch(out, budget)
    }
    fn send(&mut self, frame: Frame) -> Result<(), SendRejected> {
        self.0.send(frame)
    }
    fn send_batch(&mut self, frames: &mut Vec<Frame>) -> Result<usize, AdapterError> {
        self.0.send_batch(frames)
    }
    fn reopen(&mut self) -> Result<(), AdapterError> {
        Err(AdapterError::Fatal)
    }
    fn advance(&mut self, now_ns: u64) {
        self.0.advance(now_ns);
    }
    fn kind(&self) -> SocketKind {
        self.0.kind()
    }
    fn rx_count(&self) -> u64 {
        self.0.rx_count()
    }
    fn tx_count(&self) -> u64 {
        self.0.tx_count()
    }
}

/// When the primary dies *and* cannot reopen, the supervisor must fail
/// over to the standby and keep every frame accounted across the switch.
#[test]
fn unreopenable_primary_fails_over_to_standby() {
    for kind in queue_kinds() {
        let crash_at = 2_000_000_000u64;
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
        let mut host = RecordingHost::with_heartbeats();
        lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

        let plan = FaultPlan::new().crash_adapter_at(crash_at);
        let primary = NoReopen(FaultySocket::with_plan(mem(1_000_000), &plan));
        let standby = mem(1_000_000);
        let mut nic =
            SupervisedAdapter::with_chain(vec![Box::new(primary), Box::new(standby)], sup_cfg());
        assert_eq!(nic.chain_len(), 2);

        let mut first_delivery_after_crash = u64::MAX;
        for s in 0..=STEPS {
            let t = s * STEP_NS;
            let polled = step(t, &clock, &mut lvrm, &mut host, &mut nic);
            if t > crash_at && polled > 0 && first_delivery_after_crash == u64::MAX {
                first_delivery_after_crash = t;
            }
        }
        settle(STEPS * STEP_NS, &clock, &mut lvrm, &mut host, &mut nic);

        assert_eq!(nic.failovers, 1, "{kind:?}: the dead primary must fail over");
        assert_eq!(nic.active_index(), 1, "{kind:?}: the standby must be serving");
        assert_eq!(nic.reopens, 0, "{kind:?}: an unreopenable NIC never reopens");
        assert!(
            first_delivery_after_crash <= crash_at + 1_000_000_000,
            "{kind:?}: failover must restore delivery within one tick"
        );
        assert_no_unaccounted(&lvrm, &nic, "failover");
    }
}

/// Refused egress sends park in the retry queue and are delivered on a
/// later tick: transient TX faults cost latency, never frames.
#[test]
fn refused_egress_is_retried_not_dropped() {
    for kind in queue_kinds() {
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
        let mut host = RecordingHost::with_heartbeats();
        lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

        // Refuse three send attempts somewhere inside the run.
        let faulty = FaultySocket::new(mem(1_000_000)).send_fail(40, 3);
        let mut nic = SupervisedAdapter::new(Box::new(faulty), sup_cfg());

        for s in 0..=STEPS {
            step(s * STEP_NS, &clock, &mut lvrm, &mut host, &mut nic);
        }
        settle(STEPS * STEP_NS, &clock, &mut lvrm, &mut host, &mut nic);

        assert_eq!(nic.egress_retries, 3, "{kind:?}: each refused frame is later delivered");
        assert_no_unaccounted(&lvrm, &nic, "egress retry");
    }
}

/// Seeded randomized adapter storms: any mix of crash/stall/resume/burst
/// events must leave the pipeline healthy and fully accounted.
#[test]
fn randomized_adapter_chaos_conserves_every_frame() {
    for kind in queue_kinds() {
        for &seed in SEEDS {
            let horizon = (STEPS / 2) * STEP_NS;
            let clock = ManualClock::new();
            let mut lvrm = new_lvrm(clock.clone(), chaos_config(kind));
            let mut host = RecordingHost::with_heartbeats();
            lvrm.add_vr("deptA", &subnet(), routed_vr("a"), &mut host);

            let plan = FaultPlan::randomized_adapter(seed, horizon, 6);
            let faulty = FaultySocket::with_plan(mem(1_000_000), &plan);
            let mut nic = SupervisedAdapter::new(Box::new(faulty), sup_cfg());

            for s in 0..=STEPS {
                step(s * STEP_NS, &clock, &mut lvrm, &mut host, &mut nic);
            }
            settle(STEPS * STEP_NS, &clock, &mut lvrm, &mut host, &mut nic);

            assert_eq!(
                nic.state(),
                AdapterState::Healthy,
                "{kind:?} seed {seed}: storms within the horizon must heal"
            );
            assert_no_unaccounted(&lvrm, &nic, &format!("storm kind={kind:?} seed={seed}"));
        }
    }
}
