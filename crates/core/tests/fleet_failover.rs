//! Sharded monitor fleet acceptance suite (DESIGN.md §15): three shards
//! partition six VRs by rendezvous hash over an in-process link mesh.
//! Killing any one shard must re-home all of its VRs to their rendezvous
//! successors in under a second of simulated time, with all five
//! conservation identities plus the sixth fleet identity
//! (`vrs_owned_total == vrs_declared`) exact after convergence. Seeded
//! partition storms bounded below the shard-down interval must never
//! yield two shards accepting the same VR, and a shard that loses
//! directory quorum must keep serving what it owns but never take over.
//!
//! Set `LVRM_CHAOS_QUEUE` to one of `lamport` / `fastforward` / `mutex` /
//! `vlink` to restrict the sweep (the CI matrix does this); unset runs all.

use std::net::Ipv4Addr;

use lvrm_core::{
    randomized_fleet_storm, rendezvous_owner, AffinityMode, AllocatorKind, ChannelLink, CoreId,
    CoreMap, CoreTopology, FaultyLink, HaConfig, LinkFaultWindow, Lvrm, LvrmConfig, ManualClock,
    PeerLink, RecordingHost, Role, ShardConfig,
};
use lvrm_ipc::QueueKind;
use lvrm_net::{Frame, FrameBuilder};
use lvrm_router::VirtualRouter;

const STEP_NS: u64 = 10_000_000; // 10 ms host loop
const ADVERT_NS: u64 = 100_000_000; // 100 ms fleet adverts
const SNAPSHOT_NS: u64 = 200_000_000; // 200 ms inter-shard snapshots
const VRS: u32 = 6;
const SHARDS: u32 = 3;

fn queue_kinds() -> Vec<QueueKind> {
    match std::env::var("LVRM_CHAOS_QUEUE") {
        Ok(want) => vec![want.parse::<QueueKind>().expect("LVRM_CHAOS_QUEUE")],
        Err(_) => QueueKind::ALL.to_vec(),
    }
}

fn vr_name(i: u32) -> String {
    format!("dept{}", i + 1)
}

fn vr_subnet(i: u32) -> [(Ipv4Addr, u8); 1] {
    [(Ipv4Addr::new(10, 0, 1 + i as u8, 0), 24)]
}

fn vr_frame(i: u32, salt: u8) -> Frame {
    FrameBuilder::new(Ipv4Addr::new(10, 0, 1 + i as u8, 20 + salt), Ipv4Addr::new(10, 0, 100, 1))
        .udp(4000 + salt as u16, 80, &[])
}

fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new(name, routes))
}

fn fleet_config(kind: QueueKind, shard_id: u32) -> LvrmConfig {
    LvrmConfig {
        queue_kind: kind,
        allocator: AllocatorKind::Fixed { cores: 1 },
        supervision: true,
        flow_based: true,
        shard: Some(ShardConfig {
            shard_id,
            shards: SHARDS,
            advert_interval_ns: ADVERT_NS,
            snapshot_interval_ns: SNAPSHOT_NS,
        }),
        ..Default::default()
    }
}

/// One fleet member: a solo monitor (no HA pair) declaring the full VR
/// universe, serving only its shard-map share.
struct Shard {
    id: u32,
    clock: ManualClock,
    lvrm: Lvrm<ManualClock>,
    host: RecordingHost,
}

impl Shard {
    fn new(kind: QueueKind, id: u32, links: Vec<(u32, Box<dyn PeerLink>)>) -> Shard {
        Shard::with_config(fleet_config(kind, id), id, links)
    }

    fn with_config(config: LvrmConfig, id: u32, links: Vec<(u32, Box<dyn PeerLink>)>) -> Shard {
        let clock = ManualClock::new();
        let cores =
            CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
        let mut lvrm = Lvrm::new(config, cores, clock.clone());
        let mut host = RecordingHost::with_heartbeats();
        for i in 0..VRS {
            lvrm.add_vr(vr_name(i), &vr_subnet(i), routed_vr(&vr_name(i)), &mut host);
        }
        if lvrm.config().ha.is_some() {
            // HA-pair member: the caller attaches the intra-shard link
            // before the fleet ticks; see `shard0_ha_pair_failover_...`.
        }
        assert!(lvrm.attach_fleet(links), "config carries shard, attach must succeed");
        Shard { id, clock, lvrm, host }
    }

    fn step(&mut self, t: u64, out: &mut Vec<Frame>) {
        self.clock.set_ns(t);
        self.host.pump();
        self.lvrm.process_control();
        self.lvrm.maybe_reallocate(t, &mut self.host);
        self.lvrm.poll_egress(out);
    }

    fn drain(&mut self, out: &mut Vec<Frame>) {
        loop {
            let processed = self.host.pump();
            self.lvrm.process_control();
            let egress = self.lvrm.poll_egress(out);
            if processed == 0 && egress == 0 {
                break;
            }
        }
    }

    fn owns(&self, vr: u32) -> bool {
        self.lvrm.vr_owned_by_name(&vr_name(vr))
    }

    fn epoch(&self) -> u32 {
        self.lvrm.fleet().expect("fleet attached").epoch()
    }
}

/// All five conservation identities, from the public stats/snapshot
/// surface. Call on a drained monitor.
fn assert_identities(lvrm: &Lvrm<ManualClock>, ctx: &str) {
    let s = lvrm.stats();
    assert_eq!(
        s.frames_in,
        s.frames_out
            + s.unclassified
            + s.dispatch_drops
            + s.no_vri_drops
            + s.shrink_lost
            + s.crash_lost
            + s.quarantined_drops
            + s.shed_early,
        "(1) global conservation violated {ctx}: {s:?}"
    );
    let snap = lvrm.snapshot();
    for vr in &snap {
        assert_eq!(
            vr.frames_in,
            vr.admitted + vr.shed,
            "(2) admission identity violated for {} {ctx}",
            vr.name
        );
    }
    let live_dispatched: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.dispatched).sum();
    let live_returned: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.returned).sum();
    let queued: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.queue_len as u64).sum();
    assert_eq!(
        live_dispatched + s.retired_dispatched,
        live_returned + s.retired_returned + queued + s.reclaimed + s.queue_lost,
        "(3) dispatch identity violated {ctx}: {s:?}"
    );
    let live_drops: u64 = snap.iter().flat_map(|v| &v.vris).map(|v| v.dispatch_drops).sum();
    assert_eq!(
        s.dispatch_drops,
        live_drops + s.retired_dispatch_drops,
        "(4) drop identity violated {ctx}: {s:?}"
    );
    assert_eq!(
        s.updates_emitted,
        s.updates_folded + s.updates_lost,
        "(5) replication identity violated {ctx}: {s:?}"
    );
}

/// The sixth (fleet) identity over the surviving members: every declared
/// VR owned by exactly one shard.
fn assert_fleet_identity(shards: &[&Shard], ctx: &str) {
    for vr in 0..VRS {
        let owners: Vec<u32> = shards.iter().filter(|s| s.owns(vr)).map(|s| s.id).collect();
        assert_eq!(
            owners.len(),
            1,
            "{ctx}: {} must have exactly one owner, got {owners:?}",
            vr_name(vr)
        );
    }
    let total: usize = shards.iter().map(|s| s.lvrm.owned_vrs()).sum();
    assert_eq!(total as u32, VRS, "{ctx}: vrs_owned_total != vrs_declared");
}

/// No VR accepted by more than one shard — the storm-safe half of the
/// fleet identity (a VR may be transiently unowned mid-takeover, never
/// multiply owned).
fn assert_one_owner_at_most(shards: &[&Shard], ctx: &str) {
    for vr in 0..VRS {
        let owners: Vec<u32> = shards.iter().filter(|s| s.owns(vr)).map(|s| s.id).collect();
        assert!(
            owners.len() <= 1,
            "{ctx}: {} accepted by multiple shards: {owners:?}",
            vr_name(vr)
        );
    }
}

/// Build the 3-shard full mesh over [`ChannelLink`]s: returns per-shard
/// link vectors `(peer shard id, link)`.
fn mesh3() -> [Vec<(u32, Box<dyn PeerLink>)>; 3] {
    let (l01, l10) = ChannelLink::pair();
    let (l02, l20) = ChannelLink::pair();
    let (l12, l21) = ChannelLink::pair();
    [
        vec![(1, Box::new(l01) as Box<dyn PeerLink>), (2, Box::new(l02))],
        vec![(0, Box::new(l10) as Box<dyn PeerLink>), (2, Box::new(l12))],
        vec![(0, Box::new(l20) as Box<dyn PeerLink>), (1, Box::new(l21))],
    ]
}

/// Same mesh, every end wrapped in a [`FaultyLink`] sharing one storm
/// schedule but with per-end drop seeds.
fn mesh3_faulty(windows: &[LinkFaultWindow], seed: u64) -> [Vec<(u32, Box<dyn PeerLink>)>; 3] {
    let (l01, l10) = ChannelLink::pair();
    let (l02, l20) = ChannelLink::pair();
    let (l12, l21) = ChannelLink::pair();
    let f = |link: ChannelLink, salt: u64| -> Box<dyn PeerLink> {
        Box::new(FaultyLink::new(link, windows.to_vec(), seed ^ salt))
    };
    [
        vec![(1, f(l01, 0x01)), (2, f(l02, 0x02))],
        vec![(0, f(l10, 0x10)), (2, f(l12, 0x12))],
        vec![(0, f(l20, 0x20)), (1, f(l21, 0x21))],
    ]
}

/// Step every live shard once, feeding each VR's traffic to its current
/// owner (the fleet's steady-state contract: the front-end routes by the
/// gossiped map).
fn step_fleet(shards: &mut [Option<Shard>], t: u64, traffic: bool, out: &mut Vec<Frame>) {
    if traffic {
        for vr in 0..VRS {
            for salt in 0..2u8 {
                let frame = vr_frame(vr, salt);
                if let Some(owner) = shards.iter_mut().flatten().find(|s| s.owns(vr)) {
                    owner.lvrm.ingress(frame, &mut owner.host);
                    let _ = &owner;
                }
            }
        }
    }
    for s in shards.iter_mut().flatten() {
        s.step(t, out);
    }
}

/// The headline acceptance: kill each of the three shards in turn; every
/// VR of the corpse must land on its rendezvous successor in < 1 s of
/// simulated time, warm-adopted (books carried over), with all six
/// identities exact on every survivor after convergence.
#[test]
fn killing_any_shard_rehomes_its_vrs_to_the_rendezvous_successor_subsecond() {
    for kind in queue_kinds() {
        for victim in 0..SHARDS {
            let ctx = format!("{kind:?} victim {victim}");
            let links = mesh3();
            let mut shards: Vec<Option<Shard>> = links
                .into_iter()
                .enumerate()
                .map(|(id, l)| Some(Shard::new(kind, id as u32, l)))
                .collect();
            let mut out = Vec::new();

            // Warm the fleet: everyone adverting, snapshots streamed, and
            // traffic on every VR at its owner.
            let mut t = 0;
            while t < 1_000_000_000 {
                step_fleet(&mut shards, t, true, &mut out);
                t += STEP_NS;
            }
            {
                let live: Vec<&Shard> = shards.iter().flatten().collect();
                assert_fleet_identity(&live, &format!("{ctx} pre-kill"));
                for s in &live {
                    assert_eq!(s.epoch(), 1, "{ctx}: no membership change pre-kill");
                }
            }
            // Victim's per-VR books at the instant of death, keyed by name.
            let victim_books: Vec<(String, u64)> = {
                let v = shards[victim as usize].as_ref().unwrap();
                v.lvrm
                    .snapshot()
                    .iter()
                    .filter(|vr| v.lvrm.vr_owned_by_name(&vr.name))
                    .map(|vr| (vr.name.clone(), vr.frames_in))
                    .collect()
            };
            assert!(
                victim_books.iter().all(|(_, f)| *f > 0),
                "{ctx}: warmup must put traffic on every victim VR"
            );
            let victim_vrs: Vec<u32> =
                (0..VRS).filter(|&vr| shards[victim as usize].as_ref().unwrap().owns(vr)).collect();
            assert!(!victim_vrs.is_empty(), "{ctx}: rendezvous left the victim empty");

            // The kill: the shard vanishes mid-epoch, no goodbye.
            shards[victim as usize] = None;
            let t_kill = t;
            let survivors: Vec<u32> = (0..SHARDS).filter(|&s| s != victim).collect();

            // Successors must own the corpse's VRs within the budget.
            let mut rehomed_at = None;
            while t < t_kill + 2_000_000_000 {
                step_fleet(&mut shards, t, false, &mut out);
                let all_rehomed = victim_vrs.iter().all(|&vr| {
                    let successor = rendezvous_owner(&vr_name(vr), &survivors).unwrap();
                    shards[successor as usize].as_ref().unwrap().owns(vr)
                });
                if all_rehomed && rehomed_at.is_none() {
                    rehomed_at = Some(t);
                    break;
                }
                t += STEP_NS;
            }
            let t_rehomed = rehomed_at.unwrap_or_else(|| panic!("{ctx}: VRs never re-homed"));
            assert!(
                t_rehomed - t_kill < 1_000_000_000,
                "{ctx}: re-homing took {} ms, budget is < 1000 ms",
                (t_rehomed - t_kill) / 1_000_000
            );

            // Let the claim/ack exchange and the second survivor's map
            // adoption settle, then audit everything.
            let t_end = t + 500_000_000;
            while t < t_end {
                step_fleet(&mut shards, t, true, &mut out);
                t += STEP_NS;
            }
            for s in shards.iter_mut().flatten() {
                s.drain(&mut out);
            }
            let live: Vec<&Shard> = shards.iter().flatten().collect();
            assert_fleet_identity(&live, &format!("{ctx} post-takeover"));
            for s in &live {
                assert!(s.epoch() > 1, "{ctx}: takeover must bump the directory epoch");
                assert_identities(&s.lvrm, &format!("{ctx} shard {}", s.id));
                assert!(
                    s.lvrm.fleet().unwrap().accepting_new_vrs(),
                    "{ctx}: majority survivors keep quorum"
                );
            }

            // Warm adoption: the successor's books carry the victim's
            // frame history for every adopted VR (the snapshot stream was
            // fresh — nothing was cold-started away).
            for (name, victim_in) in &victim_books {
                let successor = rendezvous_owner(name, &survivors).unwrap();
                let s = shards[successor as usize].as_ref().unwrap();
                let adopted_in = s
                    .lvrm
                    .snapshot()
                    .iter()
                    .find(|vr| &vr.name == name)
                    .map(|vr| vr.frames_in)
                    .unwrap_or(0);
                assert!(
                    adopted_in >= *victim_in,
                    "{ctx}: {name} adopted cold — successor books {adopted_in} < victim {victim_in}"
                );
            }

            // Takeover metrics surfaced on at least one successor.
            let takeovers: u64 = live
                .iter()
                .map(|s| {
                    s.lvrm.refresh_registry();
                    s.lvrm
                        .metrics_snapshot()
                        .counter("lvrm_shard_takeovers_total", &[])
                        .unwrap_or(0)
                })
                .sum();
            assert!(takeovers >= 1, "{ctx}: takeover counter must record the adoption");
            for s in &live {
                let snap = s.lvrm.metrics_snapshot();
                assert_eq!(
                    snap.gauge("lvrm_shard_owned", &[]),
                    Some(s.lvrm.owned_vrs() as f64),
                    "{ctx}: owned gauge tracks ownership"
                );
                assert!(
                    snap.gauge("lvrm_shard_directory_epoch", &[]).unwrap_or(0.0) > 1.0,
                    "{ctx}: epoch gauge must advance"
                );
            }
        }
    }
}

/// Cold adoption: kill a shard before its first snapshot interval elapses
/// — no shadow anywhere — and the successors must still adopt its VRs
/// (empty books, identities exact), because availability does not depend
/// on the state stream.
#[test]
fn takeover_without_a_shadow_cold_adopts() {
    let kind = queue_kinds()[0];
    let ctx = format!("cold {kind:?}");
    let links = mesh3();
    let mut shards: Vec<Option<Shard>> =
        links.into_iter().enumerate().map(|(id, l)| Some(Shard::new(kind, id as u32, l))).collect();
    let mut out = Vec::new();

    // A few adverts so everyone is heard from, but kill before the first
    // snapshot ships (SNAPSHOT_NS has not elapsed).
    let mut t = 0;
    while t < SNAPSHOT_NS - 2 * STEP_NS {
        step_fleet(&mut shards, t, false, &mut out);
        t += STEP_NS;
    }
    let victim = 0u32;
    let victim_vrs: Vec<u32> =
        (0..VRS).filter(|&vr| shards[0].as_ref().unwrap().owns(vr)).collect();
    shards[0] = None;
    let survivors = [1u32, 2];

    let t_kill = t;
    while t < t_kill + 2_000_000_000 {
        step_fleet(&mut shards, t, false, &mut out);
        let done = victim_vrs.iter().all(|&vr| {
            let successor = rendezvous_owner(&vr_name(vr), &survivors).unwrap();
            shards[successor as usize].as_ref().unwrap().owns(vr)
        });
        if done {
            break;
        }
        t += STEP_NS;
    }
    let live: Vec<&Shard> = shards.iter().flatten().collect();
    assert_fleet_identity(&live, &ctx);
    for s in &live {
        assert_identities(&s.lvrm, &format!("{ctx} shard {}", s.id));
    }
    let _ = victim;
}

/// Seeded fleet storms (all shards alive throughout): outage windows are
/// bounded below the shard-down interval, so the directory must ride them
/// out — no takeover, no epoch change, and never two shards accepting the
/// same VR at any step. Deterministic per (seed × QueueKind).
#[test]
fn fleet_storm_never_yields_two_owners_for_a_vr() {
    for kind in queue_kinds() {
        for &seed in &[7u64, 42, 1337] {
            let ctx = format!("fleet-storm {kind:?} seed {seed}");
            // Windows <= 250 ms with >= 500 ms of clean air between them:
            // worst advert silence ~ 350 ms, well under the 600 ms (+ jitter)
            // shard-down interval — the fleet's documented operating
            // envelope (DESIGN.md §15).
            let horizon = 6_000_000_000u64;
            let windows = randomized_fleet_storm(seed, horizon, 8, 250_000_000);
            assert!(!windows.is_empty(), "{ctx}: storm schedule must be non-trivial");

            let links = mesh3_faulty(&windows, seed);
            let mut shards: Vec<Option<Shard>> = links
                .into_iter()
                .enumerate()
                .map(|(id, l)| Some(Shard::new(kind, id as u32, l)))
                .collect();
            let mut out = Vec::new();

            let mut t = 0;
            while t < horizon {
                step_fleet(&mut shards, t, true, &mut out);
                let live: Vec<&Shard> = shards.iter().flatten().collect();
                assert_one_owner_at_most(&live, &format!("{ctx} t={t}"));
                t += STEP_NS;
            }
            for s in shards.iter_mut().flatten() {
                s.drain(&mut out);
            }
            let live: Vec<&Shard> = shards.iter().flatten().collect();
            assert_fleet_identity(&live, &format!("{ctx} post-storm"));
            for s in &live {
                assert_eq!(
                    s.epoch(),
                    1,
                    "{ctx}: a bounded storm must never bury a live shard (false takeover)"
                );
                assert_identities(&s.lvrm, &format!("{ctx} shard {}", s.id));
            }
        }
    }
}

/// Quorum loss (CAP stance): with 2 of 3 shards dead, the lone survivor
/// keeps serving the VRs it already owns but must not absorb the second
/// corpse's VRs and must stop accepting new ones.
#[test]
fn minority_survivor_serves_owned_vrs_but_never_absorbs_the_fleet() {
    let kind = queue_kinds()[0];
    let ctx = format!("quorum {kind:?}");
    let links = mesh3();
    let mut shards: Vec<Option<Shard>> =
        links.into_iter().enumerate().map(|(id, l)| Some(Shard::new(kind, id as u32, l))).collect();
    let mut out = Vec::new();

    let mut t = 0;
    while t < 1_000_000_000 {
        step_fleet(&mut shards, t, true, &mut out);
        t += STEP_NS;
    }
    let survivor = 0usize;
    let owned_before = shards[survivor].as_ref().unwrap().lvrm.owned_vrs();
    // Both peers die at once: the survivor may adopt at most the first
    // corpse it detects (quorum still holds with the second presumed
    // alive), and must refuse the second.
    shards[1] = None;
    shards[2] = None;
    let t_kill = t;
    while t < t_kill + 3_000_000_000 {
        step_fleet(&mut shards, t, true, &mut out);
        t += STEP_NS;
    }
    let s = shards[survivor].as_mut().unwrap();
    s.drain(&mut out);
    assert!(
        !s.lvrm.fleet().unwrap().accepting_new_vrs(),
        "{ctx}: minority survivor must report quorum loss"
    );
    assert!(
        s.lvrm.owned_vrs() < VRS as usize,
        "{ctx}: minority survivor absorbed the whole fleet ({} VRs)",
        s.lvrm.owned_vrs()
    );
    assert!(
        s.lvrm.owned_vrs() >= owned_before,
        "{ctx}: quorum loss must not drop the survivor's own VRs"
    );
    // Owned VRs still serve traffic.
    let owned_vr = (0..VRS).find(|&vr| s.owns(vr)).expect("owns something");
    let before = s.lvrm.stats().frames_out;
    for salt in 0..4u8 {
        s.lvrm.ingress(vr_frame(owned_vr, salt), &mut s.host);
    }
    s.drain(&mut out);
    assert!(
        s.lvrm.stats().frames_out > before,
        "{ctx}: owned VRs must keep serving without quorum"
    );
    assert_identities(&s.lvrm, &ctx);
}

/// Intra-shard HA failover must stay invisible to the fleet: shard 0 is a
/// PR-8 HA pair whose master dies; the standby promotes well inside the
/// shard-down interval (6 × advert is twice the HA budget by design), so
/// the directory sees an unbroken shard — no takeover, no epoch bump, no
/// ownership movement.
#[test]
fn ha_pair_failover_inside_a_shard_does_not_trigger_fleet_takeover() {
    let kind = queue_kinds()[0];
    let ctx = format!("ha-pair {kind:?}");

    // Fleet links: shard 1 and shard 2 hear shard 0 through whichever HA
    // member currently speaks, so both members get a link to each peer.
    let (m1, l1m) = ChannelLink::pair(); // master0 <-> shard1
    let (m2, l2m) = ChannelLink::pair(); // master0 <-> shard2
    let (b1, l1b) = ChannelLink::pair(); // backup0 <-> shard1
    let (b2, l2b) = ChannelLink::pair(); // backup0 <-> shard2
    let (l12, l21) = ChannelLink::pair(); // shard1 <-> shard2
    let (ha_m, ha_b) = ChannelLink::pair(); // intra-shard HA link

    let ha = |priority, node_id| HaConfig {
        priority,
        node_id,
        advert_interval_ns: ADVERT_NS, // HA budget: 3 × 100 ms + skew
        delta_interval_ns: SNAPSHOT_NS,
        preempt: true,
    };
    let mut cfg_m = fleet_config(kind, 0);
    cfg_m.ha = Some(ha(200, 1));
    let mut cfg_b = fleet_config(kind, 0);
    cfg_b.ha = Some(ha(100, 2));

    let mut master0 = Shard::with_config(
        cfg_m,
        0,
        vec![(1, Box::new(m1) as Box<dyn PeerLink>), (2, Box::new(m2))],
    );
    let mut backup0 = Shard::with_config(
        cfg_b,
        0,
        vec![(1, Box::new(b1) as Box<dyn PeerLink>), (2, Box::new(b2))],
    );
    assert!(master0.lvrm.attach_ha(Box::new(ha_m)));
    assert!(backup0.lvrm.attach_ha(Box::new(ha_b)));
    let mut shard1 = Shard::new(
        kind,
        1,
        vec![(0, Box::new(l1m) as Box<dyn PeerLink>), (0, Box::new(l1b)), (2, Box::new(l12))],
    );
    let mut shard2 = Shard::new(
        kind,
        2,
        vec![(0, Box::new(l2m) as Box<dyn PeerLink>), (0, Box::new(l2b)), (1, Box::new(l21))],
    );
    let mut out = Vec::new();

    // Settle: HA election inside shard 0, fleet adverts everywhere.
    let mut t = 0;
    while t < 1_500_000_000 {
        master0.step(t, &mut out);
        backup0.step(t, &mut out);
        shard1.step(t, &mut out);
        shard2.step(t, &mut out);
        t += STEP_NS;
    }
    assert_eq!(master0.lvrm.ha_role(), Some(Role::Master), "{ctx}: election settles");
    assert_eq!(backup0.lvrm.ha_role(), Some(Role::Backup), "{ctx}");
    let shard0_owned: Vec<u32> = (0..VRS).filter(|&vr| master0.owns(vr)).collect();
    assert_eq!(shard1.epoch(), 1, "{ctx}");

    // Kill the master. The standby promotes in ~3 adverts + skew + one
    // probation advert (≈ 460 ms) — inside the ≥ 675 ms jittered fleet
    // deadline — and starts speaking for shard 0.
    drop(master0);
    let t_kill = t;
    while t < t_kill + 2_000_000_000 {
        backup0.step(t, &mut out);
        shard1.step(t, &mut out);
        shard2.step(t, &mut out);
        t += STEP_NS;
    }
    assert_eq!(backup0.lvrm.ha_role(), Some(Role::Master), "{ctx}: standby promotes");
    for s in [&shard1, &shard2] {
        assert_eq!(s.epoch(), 1, "{ctx}: an intra-shard failover must not bump the fleet epoch");
    }
    for &vr in &shard0_owned {
        assert!(backup0.owns(vr), "{ctx}: promoted standby owns the shard's VRs");
        assert!(!shard1.owns(vr) && !shard2.owns(vr), "{ctx}: no peer stole {}", vr_name(vr));
    }
}
