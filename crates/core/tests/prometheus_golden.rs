//! Golden-file test for the Prometheus text exposition.
//!
//! The scrape format is an external contract: dashboards, alerts, and the
//! CI conservation checks all key on metric names, HELP/TYPE metadata, and
//! label sets. This test renders a deterministic scenario and compares the
//! *structure* of the exposition — every line with its sample value replaced
//! by `V` — against a checked-in golden file, so a renamed metric, a dropped
//! HELP string, reordered labels, or a vanished series fails loudly while
//! counter-value drift from unrelated accounting changes does not.
//!
//! To re-bless after an intentional format change:
//!
//! ```text
//! LVRM_BLESS=1 cargo test -p lvrm-core --test prometheus_golden
//! ```

use std::net::Ipv4Addr;

use lvrm_core::{
    AffinityMode, AllocatorKind, CoreId, CoreMap, CoreTopology, Lvrm, LvrmConfig, ManualClock,
    RecordingHost,
};
use lvrm_ipc::QueueKind;
use lvrm_net::{Frame, FrameBuilder};
use lvrm_router::VirtualRouter;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");

fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new(name, routes))
}

fn frame(subnet_c: u8, last: u8, ts_ns: u64) -> Frame {
    let mut f = FrameBuilder::new(Ipv4Addr::new(10, 0, subnet_c, last), Ipv4Addr::new(10, 0, 2, 1))
        .udp(1, 2, &[]);
    f.ts_ns = ts_ns;
    f
}

/// A small deterministic run exercising every family the monitor registers:
/// two VRs, classified + unclassified traffic, latency samples, a full
/// drain, and one reallocation tick.
fn render_fixture() -> String {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        queue_kind: QueueKind::Lamport,
        allocator: AllocatorKind::Fixed { cores: 2 },
        supervision: true,
        ..Default::default()
    };
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let mut lvrm = Lvrm::new(config, cores, clock.clone());
    let mut host = RecordingHost::with_heartbeats();
    lvrm.add_vr("deptA", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr("a"), &mut host);
    lvrm.add_vr("deptB", &[(Ipv4Addr::new(10, 0, 3, 0), 24)], routed_vr("b"), &mut host);

    let mut out = Vec::new();
    for step in 1..=20u64 {
        let t = step * 100_000_000;
        clock.set_ns(t);
        let mut burst = vec![
            frame(1, (step % 200) as u8, t - 50_000),
            frame(3, (step % 200) as u8, t - 30_000),
            frame(9, 1, t - 10_000), // matches no VR: unclassified
        ];
        lvrm.ingress_batch(&mut burst, &mut host);
        host.pump();
        lvrm.process_control();
        lvrm.maybe_reallocate(t, &mut host);
        lvrm.poll_egress(&mut out);
    }
    loop {
        let processed = host.pump();
        lvrm.process_control();
        if processed == 0 && lvrm.poll_egress(&mut out) == 0 {
            break;
        }
    }
    lvrm.render_prometheus()
}

/// Replace each sample line's value with `V`, keeping names, labels, and
/// comment lines (`# HELP` / `# TYPE`) verbatim.
fn normalize(exposition: &str) -> String {
    let mut out = String::new();
    for line in exposition.lines() {
        if line.starts_with('#') || line.is_empty() {
            out.push_str(line);
        } else {
            match line.rsplit_once(' ') {
                Some((series, _value)) => {
                    out.push_str(series);
                    out.push_str(" V");
                }
                None => out.push_str(line),
            }
        }
        out.push('\n');
    }
    out
}

#[test]
fn exposition_structure_matches_golden() {
    let rendered = normalize(&render_fixture());
    if std::env::var("LVRM_BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with LVRM_BLESS=1 to create it");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition structure changed. If intentional, re-bless with \
         LVRM_BLESS=1 cargo test -p lvrm-core --test prometheus_golden"
    );
}

/// The fixture must actually move frames — otherwise the golden quietly
/// degenerates to a registry of zeros and stops guarding the per-VR and
/// per-VRI series.
#[test]
fn fixture_exercises_every_family_kind() {
    let exposition = render_fixture();
    for needle in [
        "# TYPE lvrm_frames_in_total counter",
        "# TYPE lvrm_data_queued gauge",
        "# TYPE lvrm_vr_latency_ns summary",
        "lvrm_vr_frames_in_total{vr=\"deptA\"}",
        "lvrm_vr_frames_in_total{vr=\"deptB\"}",
        "lvrm_vri_dispatched_total{",
        "lvrm_vr_latency_ns{vr=\"deptA\",quantile=",
        "lvrm_info{",
    ] {
        assert!(exposition.contains(needle), "exposition is missing {needle:?}:\n{exposition}");
    }
    // Sample values in the fixture are non-trivial.
    let frames_in = exposition
        .lines()
        .find(|l| l.starts_with("lvrm_frames_in_total "))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .expect("lvrm_frames_in_total sample");
    assert_eq!(frames_in, 60, "fixture ingests 20 steps x 3 frames");
}
