//! Property-based tests: every queue implementation must behave exactly like
//! a bounded FIFO (modeled with `VecDeque`) under any interleaving of sends
//! and receives, and must deliver items unmutated and in order across threads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lvrm_ipc::vlink::VLinkQueue;
use lvrm_ipc::{queue, Full, QueueKind};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Send(u64),
    Recv,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(prop_oneof![any::<u64>().prop_map(Op::Send), Just(Op::Recv)], 0..200)
}

fn check_against_model(kind: QueueKind, capacity: usize, script: &[Op]) {
    let (mut tx, mut rx) = queue::<u64>(kind, capacity);
    let mut model: VecDeque<u64> = VecDeque::new();
    for op in script {
        match op {
            Op::Send(v) => {
                let res = tx.try_send(*v);
                if model.len() < capacity {
                    assert_eq!(res, Ok(()), "send should succeed below capacity");
                    model.push_back(*v);
                } else {
                    assert_eq!(res, Err(Full(*v)), "send should fail at capacity");
                }
            }
            Op::Recv => {
                assert_eq!(rx.try_recv(), model.pop_front());
            }
        }
    }
    // Drain: everything still queued must come out in model order.
    while let Some(expect) = model.pop_front() {
        assert_eq!(rx.try_recv(), Some(expect));
    }
    assert_eq!(rx.try_recv(), None);
}

/// A script mixing per-item and bulk operations, to pin the batch entry
/// points to the same bounded-FIFO model (and to each other).
#[derive(Clone, Debug)]
enum BatchOp {
    Send(u64),
    Recv,
    /// Bulk send: the queue must accept exactly the free-space prefix.
    SendBatch(Vec<u64>),
    /// Bulk receive with a max: exactly `min(occupancy, max)` items, FIFO.
    RecvBatch(usize),
}

fn batch_ops() -> impl Strategy<Value = Vec<BatchOp>> {
    prop::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(BatchOp::Send),
            Just(BatchOp::Recv),
            prop::collection::vec(any::<u64>(), 0..12).prop_map(BatchOp::SendBatch),
            (0usize..12).prop_map(BatchOp::RecvBatch),
        ],
        0..120,
    )
}

fn check_batch_against_model(kind: QueueKind, capacity: usize, script: &[BatchOp]) {
    let (mut tx, mut rx) = queue::<u64>(kind, capacity);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut out: Vec<u64> = Vec::new();
    for op in script {
        match op {
            BatchOp::Send(v) => {
                let res = tx.try_send(*v);
                if model.len() < capacity {
                    assert_eq!(res, Ok(()));
                    model.push_back(*v);
                } else {
                    assert_eq!(res, Err(Full(*v)));
                }
            }
            BatchOp::Recv => {
                assert_eq!(rx.try_recv(), model.pop_front());
            }
            BatchOp::SendBatch(items) => {
                let free = capacity - model.len();
                let want = free.min(items.len());
                let mut pending = items.clone();
                let accepted = tx.try_send_batch(&mut pending);
                assert_eq!(accepted, want, "batch send must fill exactly the free space");
                assert_eq!(pending.len(), items.len() - want, "rejected suffix stays");
                assert_eq!(&pending[..], &items[want..], "rejected suffix unmutated");
                model.extend(items[..want].iter().copied());
            }
            BatchOp::RecvBatch(max) => {
                out.clear();
                let want = model.len().min(*max);
                let got = rx.try_recv_batch(&mut out, *max);
                assert_eq!(got, want, "batch recv must drain exactly min(occupancy, max)");
                assert_eq!(out.len(), want);
                for v in &out {
                    assert_eq!(Some(*v), model.pop_front(), "FIFO order across batch recv");
                }
            }
        }
    }
    out.clear();
    rx.try_recv_batch(&mut out, usize::MAX);
    assert_eq!(out.len(), model.len());
    for v in &out {
        assert_eq!(Some(*v), model.pop_front());
    }
    assert_eq!(rx.try_recv(), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lamport_matches_fifo_model(script in ops(), cap in 1usize..16) {
        check_against_model(QueueKind::Lamport, cap, &script);
    }

    #[test]
    fn fastforward_matches_fifo_model(script in ops(), cap in 1usize..16) {
        check_against_model(QueueKind::FastForward, cap, &script);
    }

    #[test]
    fn mutex_matches_fifo_model(script in ops(), cap in 1usize..16) {
        check_against_model(QueueKind::Mutex, cap, &script);
    }

    /// Single-threaded, the MPMC ring is a bounded FIFO like every SPSC kind.
    #[test]
    fn vlink_matches_fifo_model(script in ops(), cap in 1usize..16) {
        check_against_model(QueueKind::VLink, cap, &script);
    }

    /// Batch and per-item entry points are interchangeable: any interleaving
    /// of the four operations still behaves like the bounded FIFO model.
    #[test]
    fn lamport_batch_matches_fifo_model(script in batch_ops(), cap in 1usize..16) {
        check_batch_against_model(QueueKind::Lamport, cap, &script);
    }

    #[test]
    fn fastforward_batch_matches_fifo_model(script in batch_ops(), cap in 1usize..16) {
        check_batch_against_model(QueueKind::FastForward, cap, &script);
    }

    #[test]
    fn mutex_batch_matches_fifo_model(script in batch_ops(), cap in 1usize..16) {
        check_batch_against_model(QueueKind::Mutex, cap, &script);
    }

    #[test]
    fn vlink_batch_matches_fifo_model(script in batch_ops(), cap in 1usize..16) {
        check_batch_against_model(QueueKind::VLink, cap, &script);
    }

    /// Producer-side `len()` must equal true occupancy whenever the queue is
    /// quiescent (no concurrent access), for every implementation.
    #[test]
    fn quiescent_len_is_exact(kind_idx in 0usize..4, sends in 0usize..8, recvs in 0usize..8) {
        let kind = QueueKind::ALL[kind_idx];
        let cap = 8;
        let (mut tx, mut rx) = queue::<u64>(kind, cap);
        let mut occupancy = 0usize;
        for i in 0..sends {
            if tx.try_send(i as u64).is_ok() {
                occupancy += 1;
            }
        }
        for _ in 0..recvs {
            if rx.try_recv().is_some() {
                occupancy -= 1;
            }
        }
        prop_assert_eq!(tx.len(), occupancy);
        prop_assert_eq!(rx.len(), occupancy);
    }
}

/// Concurrent bulk smoke test per kind: a producer pushing uneven bursts and
/// a consumer draining uneven bursts still see one ordered FIFO stream.
#[test]
fn concurrent_batch_order_all_kinds() {
    for kind in QueueKind::ALL {
        let (mut tx, mut rx) = queue::<u64>(kind, 32);
        const N: u64 = 50_000;
        let t = std::thread::spawn(move || {
            let mut pending: Vec<u64> = Vec::new();
            let mut next = 0u64;
            while next < N || !pending.is_empty() {
                while pending.len() < 13 && next < N {
                    pending.push(next);
                    next += 1;
                }
                if tx.try_send_batch(&mut pending) == 0 {
                    std::hint::spin_loop();
                }
            }
        });
        let mut out: Vec<u64> = Vec::new();
        let mut expected = 0u64;
        while expected < N {
            out.clear();
            if rx.try_recv_batch(&mut out, 7) == 0 {
                std::hint::spin_loop();
                continue;
            }
            for v in &out {
                assert_eq!(*v, expected, "kind {}", kind.name());
                expected += 1;
            }
        }
        t.join().unwrap();
    }
}

/// MPMC contract, part 1: several producers and several consumers hammering
/// one ring — every element sent is delivered exactly once, nothing lost,
/// nothing duplicated, and the union matches the sent multiset exactly.
#[test]
fn vlink_mpmc_delivers_exactly_once() {
    const PRODUCERS: u64 = 3;
    const CONSUMERS: usize = 3;
    const PER_PRODUCER: u64 = if cfg!(miri) { 200 } else { 20_000 };
    let (tx, rx) = VLinkQueue::<u64>::with_capacity(16);
    let taken = Arc::new(AtomicUsize::new(0));
    let total = (PRODUCERS * PER_PRODUCER) as usize;

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for seq in 0..PER_PRODUCER {
                    let mut v = (p << 32) | seq;
                    loop {
                        match tx.try_send(v) {
                            Ok(()) => break,
                            Err(Full(back)) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let rx = rx.clone();
            let taken = taken.clone();
            std::thread::spawn(move || {
                let mut got: Vec<u64> = Vec::new();
                let mut burst: Vec<u64> = Vec::new();
                while taken.load(Ordering::Relaxed) < total {
                    burst.clear();
                    let n = rx.try_recv_batch(&mut burst, 5);
                    if n == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    taken.fetch_add(n, Ordering::Relaxed);
                    got.extend_from_slice(&burst);
                }
                got
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    let mut all: Vec<u64> = Vec::new();
    for c in consumers {
        all.extend(c.join().unwrap());
    }
    assert_eq!(all.len(), total, "every element must be delivered");
    all.sort_unstable();
    let expected: Vec<u64> =
        (0..PRODUCERS).flat_map(|p| (0..PER_PRODUCER).map(move |s| (p << 32) | s)).collect();
    assert_eq!(all, expected, "delivered multiset must match the sent multiset");
}

/// MPMC contract, part 2: stealing may interleave producers arbitrarily, but
/// within any one consumer's stream each producer's items appear in send
/// order (the ring is FIFO and claims are taken in ring order).
#[test]
fn vlink_mpmc_preserves_per_producer_fifo() {
    const PRODUCERS: u64 = 3;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = if cfg!(miri) { 200 } else { 20_000 };
    let (tx, rx) = VLinkQueue::<u64>::with_capacity(8);
    let taken = Arc::new(AtomicUsize::new(0));
    let total = (PRODUCERS * PER_PRODUCER) as usize;

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for seq in 0..PER_PRODUCER {
                    let mut v = (p << 32) | seq;
                    loop {
                        match tx.try_send(v) {
                            Ok(()) => break,
                            Err(Full(back)) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let rx = rx.clone();
            let taken = taken.clone();
            std::thread::spawn(move || {
                let mut last: Vec<Option<u64>> = vec![None; PRODUCERS as usize];
                let mut burst: Vec<u64> = Vec::new();
                while taken.load(Ordering::Relaxed) < total {
                    burst.clear();
                    let n = rx.try_recv_batch(&mut burst, 3);
                    if n == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    taken.fetch_add(n, Ordering::Relaxed);
                    for v in &burst {
                        let p = (v >> 32) as usize;
                        let seq = v & 0xffff_ffff;
                        if let Some(prev) = last[p] {
                            assert!(prev < seq, "producer {p} reordered: {prev} then {seq}");
                        }
                        last[p] = Some(seq);
                    }
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    for c in consumers {
        c.join().unwrap();
    }
}

/// Dropping the ring with items still queued must run their destructors:
/// every clone sent but never received is released by the queue itself.
#[test]
fn vlink_drop_releases_queued_items() {
    let sentinel = Arc::new(());
    let (tx, rx) = VLinkQueue::<Arc<()>>::with_capacity(8);
    for _ in 0..5 {
        tx.try_send(sentinel.clone()).unwrap();
    }
    drop(rx.try_recv().expect("one out"));
    assert_eq!(Arc::strong_count(&sentinel), 5, "4 queued + the sentinel");
    drop(tx);
    drop(rx);
    assert_eq!(Arc::strong_count(&sentinel), 1, "destructor must drain the ring");
}

/// Concurrent smoke test per kind: order and content preserved under real
/// thread interleavings (longer stress lives in each module's unit tests).
#[test]
fn concurrent_order_all_kinds() {
    for kind in QueueKind::ALL {
        let (mut tx, mut rx) = queue::<u64>(kind, 32);
        const N: u64 = 50_000;
        let t = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.try_send(v) {
                        Ok(()) => break,
                        Err(Full(b)) => {
                            v = b;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            if let Some(v) = rx.try_recv() {
                assert_eq!(v, expected, "kind {}", kind.name());
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        t.join().unwrap();
    }
}
