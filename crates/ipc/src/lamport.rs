//! Lamport's lock-free SPSC ring buffer (the paper's default IPC queue).
//!
//! Correctness argument (after Lamport 1977, the paper's \[23\]): with exactly
//! one producer advancing `tail` and one consumer advancing `head`, each index
//! has a single writer, so plain ring-buffer logic is race-free provided the
//! *slot contents* are published before the index that makes them visible.
//! We realize "published before" with Release stores on the owned index and
//! Acquire loads of the foreign index — the minimal ordering this algorithm
//! needs (per *Rust Atomics and Locks*, ch. 5).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::Full;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the producer/consumer split guarantees each slot is accessed by at
// most one thread at a time (the index protocol hands slots over with
// Release/Acquire ordering).
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Runs when the *last* endpoint goes away, so it sees every item that
        // was ever enqueued and not received — including items the sender
        // pushed after the receiver dropped (the old receiver-side drain
        // leaked those).
        let slots = self.buf.len();
        let mut head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        while head != tail {
            // SAFETY: &mut self means no endpoint is alive; every slot in
            // [head, tail) holds an initialized, undelivered item.
            unsafe { (*self.buf[head].get()).assume_init_drop() };
            head = if head + 1 == slots { 0 } else { head + 1 };
        }
    }
}

/// Factory type; split into endpoints with [`LamportQueue::with_capacity`].
pub struct LamportQueue<T>(std::marker::PhantomData<T>);

impl<T: Send> LamportQueue<T> {
    /// Create a queue holding up to `capacity` items and split it into its
    /// producer and consumer endpoints.
    ///
    /// One ring slot is sacrificed to distinguish full from empty, so the
    /// internal buffer has `capacity + 1` slots.
    pub fn with_capacity(capacity: usize) -> (LamportSender<T>, LamportReceiver<T>) {
        assert!(capacity > 0, "queue capacity must be positive");
        let slots = capacity + 1;
        let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
            (0..slots).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
        let inner = Arc::new(Inner {
            buf,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        });
        (
            LamportSender { inner: Arc::clone(&inner), cached_head: 0 },
            LamportReceiver { inner, cached_tail: 0 },
        )
    }
}

/// Producer endpoint.
pub struct LamportSender<T> {
    inner: Arc<Inner<T>>,
    /// Last observed consumer position; refreshed only when the ring looks
    /// full, sparing an Acquire load (and a likely cache miss) per send.
    cached_head: usize,
}

/// Consumer endpoint.
pub struct LamportReceiver<T> {
    inner: Arc<Inner<T>>,
    /// Last observed producer position (same caching trick as the sender).
    cached_tail: usize,
}

impl<T: Send> LamportSender<T> {
    #[inline]
    pub fn try_send(&mut self, item: T) -> Result<(), Full<T>> {
        let inner = &*self.inner;
        let slots = inner.buf.len();
        // Only the producer writes `tail`, so Relaxed is fine for our own read.
        let tail = inner.tail.load(Ordering::Relaxed);
        let next = if tail + 1 == slots { 0 } else { tail + 1 };
        if next == self.cached_head {
            // Ring looked full against the cached head — refresh it.
            self.cached_head = inner.head.load(Ordering::Acquire);
            if next == self.cached_head {
                return Err(Full(item));
            }
        }
        // SAFETY: slot `tail` is not visible to the consumer until the
        // Release store below, and the producer owns it exclusively now.
        unsafe { (*inner.buf[tail].get()).write(item) };
        inner.tail.store(next, Ordering::Release);
        Ok(())
    }

    /// Enqueue as many items as fit from the front of `items`, removing the
    /// accepted prefix, and publish `tail` **once** for the whole burst.
    /// Returns how many were accepted.
    ///
    /// SPSC safety is unchanged: every slot in `[tail, tail + n)` is invisible
    /// to the consumer until the single Release store below, exactly as a
    /// one-item send publishes its single slot. Items that don't fit stay in
    /// `items` (no loss): the free run is computed *before* any slot is
    /// written.
    pub fn try_send_batch(&mut self, items: &mut Vec<T>) -> usize {
        if items.is_empty() {
            return 0;
        }
        let inner = &*self.inner;
        let slots = inner.buf.len();
        let mut tail = inner.tail.load(Ordering::Relaxed);
        let free = |head: usize| (head + slots - tail - 1) % slots;
        let mut avail = free(self.cached_head);
        if avail < items.len() {
            // Looks too full against the cached head — refresh once per burst.
            self.cached_head = inner.head.load(Ordering::Acquire);
            avail = free(self.cached_head);
        }
        let n = avail.min(items.len());
        if n == 0 {
            return 0;
        }
        for item in items.drain(..n) {
            // SAFETY: slot `tail` lies in the free run computed above and is
            // not visible to the consumer until the Release store below.
            unsafe { (*inner.buf[tail].get()).write(item) };
            tail = if tail + 1 == slots { 0 } else { tail + 1 };
        }
        inner.tail.store(tail, Ordering::Release);
        n
    }

    /// Items currently buffered (producer-side estimate, exact for SPSC use).
    #[inline]
    pub fn len(&self) -> usize {
        let slots = self.inner.buf.len();
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        (tail + slots - head) % slots
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.buf.len() - 1
    }
}

impl<T: Send> LamportReceiver<T> {
    #[inline]
    pub fn try_recv(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let slots = inner.buf.len();
        let head = inner.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = inner.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: head != tail, so slot `head` holds an initialized item the
        // producer published with Release; our Acquire load above pairs with
        // it. The consumer owns the slot until the store below.
        let item = unsafe { (*inner.buf[head].get()).assume_init_read() };
        let next = if head + 1 == slots { 0 } else { head + 1 };
        inner.head.store(next, Ordering::Release);
        Some(item)
    }

    /// Dequeue up to `max` items into `out`, publishing `head` **once** for
    /// the whole burst. Returns how many were appended.
    ///
    /// Mirror image of [`LamportSender::try_send_batch`]: the occupied run is
    /// read against a tail observed with one Acquire load, and the slots are
    /// handed back to the producer with a single Release store at the end.
    pub fn try_recv_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let inner = &*self.inner;
        let slots = inner.buf.len();
        let mut head = inner.head.load(Ordering::Relaxed);
        let mut avail = (self.cached_tail + slots - head) % slots;
        if avail < max {
            self.cached_tail = inner.tail.load(Ordering::Acquire);
            avail = (self.cached_tail + slots - head) % slots;
        }
        let n = avail.min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        for _ in 0..n {
            // SAFETY: head != cached_tail within the occupied run, so each
            // slot holds an item published by the producer's Release store.
            out.push(unsafe { (*inner.buf[head].get()).assume_init_read() });
            head = if head + 1 == slots { 0 } else { head + 1 };
        }
        inner.head.store(head, Ordering::Release);
        n
    }

    /// Items currently buffered (consumer-side view).
    #[inline]
    pub fn len(&self) -> usize {
        let slots = self.inner.buf.len();
        let tail = self.inner.tail.load(Ordering::Acquire);
        let head = self.inner.head.load(Ordering::Relaxed);
        (tail + slots - head) % slots
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.buf.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let (mut tx, mut rx) = LamportQueue::with_capacity(8);
        for i in 0..8 {
            tx.try_send(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.try_recv(), Some(i));
        }
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = LamportQueue::with_capacity(3);
        for round in 0..100u32 {
            tx.try_send(round).unwrap();
            assert_eq!(rx.try_recv(), Some(round));
        }
    }

    #[test]
    fn full_and_empty_detection() {
        let (mut tx, mut rx) = LamportQueue::with_capacity(2);
        assert!(rx.try_recv().is_none());
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(Full(3)));
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), Some(3));
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn len_tracks_occupancy_from_both_ends() {
        let (mut tx, mut rx) = LamportQueue::with_capacity(4);
        assert_eq!(tx.len(), 0);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.try_recv();
        assert_eq!(tx.len(), 1);
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn cross_thread_transfer_preserves_order() {
        let (mut tx, mut rx) = LamportQueue::with_capacity(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.try_send(v) {
                        Ok(()) => break,
                        Err(Full(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = rx.try_recv() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn drop_runs_destructors_of_queued_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let (mut tx, rx) = LamportQueue::with_capacity(4);
        tx.try_send(D).unwrap();
        tx.try_send(D).unwrap();
        drop(rx);
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LamportQueue::<u8>::with_capacity(0);
    }

    #[test]
    fn batch_send_accepts_prefix_and_keeps_rest() {
        let (mut tx, mut rx) = LamportQueue::with_capacity(4);
        let mut items: Vec<u32> = (0..7).collect();
        assert_eq!(tx.try_send_batch(&mut items), 4);
        assert_eq!(items, vec![4, 5, 6], "unaccepted suffix stays put");
        for i in 0..4 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(tx.try_send_batch(&mut items), 3);
        assert!(items.is_empty());
    }

    #[test]
    fn batch_recv_respects_max_and_order() {
        let (mut tx, mut rx) = LamportQueue::with_capacity(8);
        for i in 0..6u32 {
            tx.try_send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.try_recv_batch(&mut out, 100), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.try_recv_batch(&mut out, 4), 0, "empty queue");
    }

    #[test]
    fn batch_ops_wrap_around() {
        let (mut tx, mut rx) = LamportQueue::with_capacity(4);
        let mut out = Vec::new();
        let mut next = 0u64;
        for _ in 0..50 {
            let mut burst: Vec<u64> = (next..next + 3).collect();
            next += 3;
            assert_eq!(tx.try_send_batch(&mut burst), 3);
            assert_eq!(rx.try_recv_batch(&mut out, 3), 3);
        }
        assert_eq!(out, (0..150).collect::<Vec<u64>>());
    }

    #[test]
    fn batch_cross_thread_transfer_preserves_order() {
        let (mut tx, mut rx) = LamportQueue::with_capacity(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            let mut pending: Vec<u64> = Vec::new();
            let mut next = 0u64;
            while next < N || !pending.is_empty() {
                while pending.len() < 17 && next < N {
                    pending.push(next);
                    next += 1;
                }
                if tx.try_send_batch(&mut pending) == 0 {
                    std::hint::spin_loop();
                }
            }
        });
        let mut out = Vec::with_capacity(N as usize);
        while out.len() < N as usize {
            if rx.try_recv_batch(&mut out, 23) == 0 {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(out.iter().copied().eq(0..N));
    }

    /// Regression: items pushed *after* the receiver dropped used to leak
    /// (the receiver-side drain could not see them). Draining in the ring's
    /// own Drop catches every undelivered item regardless of teardown order.
    #[test]
    fn send_after_receiver_drop_still_runs_destructors() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let (mut tx, rx) = LamportQueue::with_capacity(8);
        tx.try_send(D).unwrap();
        drop(rx);
        tx.try_send(D).unwrap();
        tx.try_send(D).unwrap();
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "no drops while queued");
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }
}
