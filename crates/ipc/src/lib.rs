//! Inter-process communication queues for LVRM (paper §3.5).
//!
//! LVRM and each VRI exchange frames and control events through bounded FIFO
//! queues placed in shared memory. The paper stresses that IPC must be cheap:
//! its prototype uses **lock-free synchronization** after Lamport's proof that
//! a single-producer/single-consumer ring buffer is correct without locks,
//! and cites FastForward-style cache-optimized variants as drop-in upgrades.
//!
//! This crate ships three interchangeable SPSC queue implementations:
//!
//! * [`LamportQueue`] — the classic ring with shared head/tail indices,
//!   published with Acquire/Release atomics (the paper's default, \[23\]);
//! * [`FastForwardQueue`] — a slot-flag ring in which producer and consumer
//!   never share an index cache line (the paper's cited upgrade \[17\]);
//! * [`MutexQueue`] — a lock-based baseline used by the ablation benches to
//!   justify the lock-free choice.
//!
//! Endpoints are **typed**: a queue splits into a [`Sender`] and a
//! [`Receiver`], each `Send` but deliberately not `Clone`/`Sync`, so the
//! single-producer/single-consumer contract is enforced by the type system
//! rather than by discipline. [`QueueKind`] selects an implementation at run
//! time (LVRM's extensibility dimension); dispatch goes through a small enum
//! rather than trait objects so the hot path stays monomorphic-friendly.
//!
//! The [`channels`] module bundles queues into the shapes LVRM needs: a
//! bidirectional data-plane pair plus a control pair per VRI, with the
//! control queue given strict priority (paper §2.1: "each VRI first processes
//! any control event available in its incoming control queue").

pub mod channels;
pub mod fastforward;
pub mod lamport;
pub mod mutexq;
pub mod vlink;

pub use channels::{duplex, Attachment, ControlEvent, VriChannels, VriEndpoint};
pub use fastforward::FastForwardQueue;
pub use lamport::LamportQueue;
pub use mutexq::MutexQueue;
pub use vlink::{VLinkQueue, VLinkReceiver, VLinkSender};

/// Which queue implementation to instantiate (extensibility dimension §3.5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum QueueKind {
    /// Lamport's lock-free SPSC ring (the paper's default).
    #[default]
    Lamport,
    /// FastForward-style slot-flag ring (cache-optimized variant).
    FastForward,
    /// Lock-based baseline.
    Mutex,
    /// Virtual-Link-style bounded MPMC ring. In point-to-point positions it
    /// behaves like the SPSC rings; under `lvrm-core` it additionally enables
    /// the shared per-VR ingress ring that VRIs steal bursts from.
    VLink,
}

/// Error returned when a queue-kind name doesn't parse; carries the names
/// that would have.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownQueueKind(pub String);

impl std::fmt::Display for UnknownQueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown queue kind {:?} (expected one of", self.0)?;
        for kind in QueueKind::ALL {
            write!(f, " {}", kind.as_str())?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for UnknownQueueKind {}

impl QueueKind {
    /// All variants, for sweeps and ablations.
    pub const ALL: [QueueKind; 4] =
        [QueueKind::Lamport, QueueKind::FastForward, QueueKind::Mutex, QueueKind::VLink];

    /// Canonical name: the single source of truth for every flag, config
    /// directive, env filter, and bench label. [`QueueKind::from_str`] is the
    /// inverse; `QueueKind::ALL` round-trips through the pair.
    pub fn as_str(self) -> &'static str {
        match self {
            QueueKind::Lamport => "lamport",
            QueueKind::FastForward => "fastforward",
            QueueKind::Mutex => "mutex",
            QueueKind::VLink => "vlink",
        }
    }

    /// Human-readable name used in bench output (alias of [`Self::as_str`]).
    pub fn name(self) -> &'static str {
        self.as_str()
    }
}

impl std::str::FromStr for QueueKind {
    type Err = UnknownQueueKind;

    fn from_str(s: &str) -> Result<QueueKind, UnknownQueueKind> {
        QueueKind::ALL
            .into_iter()
            .find(|kind| kind.as_str() == s)
            .ok_or_else(|| UnknownQueueKind(s.to_string()))
    }
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Pressure level derived from a queue's occupancy against [`Watermarks`].
///
/// Ordered so that an aggregate over several queues is simply the `max`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum PressureLevel {
    /// Occupancy at or below the low watermark.
    #[default]
    Normal,
    /// Occupancy between the watermarks: elevated, but admission continues.
    Pressured,
    /// Occupancy at or above the high watermark: the consumer is not keeping
    /// up and new work is liable to tail-drop.
    Overloaded,
}

impl PressureLevel {
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Normal => "normal",
            PressureLevel::Pressured => "pressured",
            PressureLevel::Overloaded => "overloaded",
        }
    }
}

/// High/low occupancy watermarks, as fractions of queue capacity.
///
/// `classify` is stateless; the hysteresis between the two marks lives in the
/// caller's state machine (see `lvrm-core`'s `PressureTracker`): a queue only
/// leaves `Overloaded` once it drains back below `low`, so the band between
/// the marks absorbs occupancy jitter instead of flapping the signal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Watermarks {
    /// Fraction of capacity at or below which the queue is `Normal`.
    pub low: f64,
    /// Fraction of capacity at or above which the queue is `Overloaded`.
    pub high: f64,
}

impl Watermarks {
    pub const fn new(low: f64, high: f64) -> Watermarks {
        Watermarks { low, high }
    }

    /// Stateless classification of `len` queued items out of `capacity`.
    pub fn classify(&self, len: usize, capacity: usize) -> PressureLevel {
        let occ = occupancy(len, capacity);
        if occ >= self.high {
            PressureLevel::Overloaded
        } else if occ > self.low {
            PressureLevel::Pressured
        } else {
            PressureLevel::Normal
        }
    }
}

impl Default for Watermarks {
    fn default() -> Self {
        // Overload at 3/4 full, recover once drained back to 1/4.
        Watermarks { low: 0.25, high: 0.75 }
    }
}

/// Occupancy fraction of a queue (`len / capacity`, 0.0 for zero capacity).
pub fn occupancy(len: usize, capacity: usize) -> f64 {
    if capacity == 0 {
        0.0
    } else {
        len as f64 / capacity as f64
    }
}

/// Error returned by `try_send` when the queue is full; carries the item back.
#[derive(Debug, PartialEq, Eq)]
pub struct Full<T>(pub T);

/// Sending endpoint of an SPSC queue.
///
/// `&mut self` on [`Sender::try_send`] enforces single-producer use.
pub enum Sender<T> {
    Lamport(lamport::LamportSender<T>),
    FastForward(fastforward::FfSender<T>),
    Mutex(mutexq::MutexSender<T>),
    VLink(vlink::VLinkSender<T>),
}

/// Receiving endpoint of an SPSC queue.
pub enum Receiver<T> {
    Lamport(lamport::LamportReceiver<T>),
    FastForward(fastforward::FfReceiver<T>),
    Mutex(mutexq::MutexReceiver<T>),
    VLink(vlink::VLinkReceiver<T>),
}

impl<T: Send> Sender<T> {
    /// Enqueue `item`, or give it back if the queue is full.
    #[inline]
    pub fn try_send(&mut self, item: T) -> Result<(), Full<T>> {
        match self {
            Sender::Lamport(s) => s.try_send(item),
            Sender::FastForward(s) => s.try_send(item),
            Sender::Mutex(s) => s.try_send(item),
            Sender::VLink(s) => s.try_send(item),
        }
    }

    /// Enqueue up to `items.len()` items in one burst, draining the accepted
    /// prefix from `items`. Returns how many were accepted (possibly 0).
    ///
    /// For the lock-free rings this publishes the producer index (Lamport) or
    /// adjusts the occupancy counter (FastForward) **once per burst** instead
    /// of once per item; for the mutex baseline it takes the lock once.
    #[inline]
    pub fn try_send_batch(&mut self, items: &mut Vec<T>) -> usize {
        match self {
            Sender::Lamport(s) => s.try_send_batch(items),
            Sender::FastForward(s) => s.try_send_batch(items),
            Sender::Mutex(s) => s.try_send_batch(items),
            Sender::VLink(s) => s.try_send_batch(items),
        }
    }

    /// Current number of queued items, as observable from the producer side.
    ///
    /// The VRI adapter's queue-length load estimator (paper §3.4) reads this
    /// on every dispatch. For [`FastForwardQueue`] the value is a lower-bound
    /// estimate maintained without touching consumer state.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Sender::Lamport(s) => s.len(),
            Sender::FastForward(s) => s.len(),
            Sender::Mutex(s) => s.len(),
            Sender::VLink(s) => s.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity (maximum number of buffered items).
    #[inline]
    pub fn capacity(&self) -> usize {
        match self {
            Sender::Lamport(s) => s.capacity(),
            Sender::FastForward(s) => s.capacity(),
            Sender::Mutex(s) => s.capacity(),
            Sender::VLink(s) => s.capacity(),
        }
    }

    /// Occupancy fraction (`len / capacity`) as observable from the producer.
    #[inline]
    pub fn occupancy(&self) -> f64 {
        occupancy(self.len(), self.capacity())
    }

    /// Stateless pressure classification of this queue under `wm`.
    #[inline]
    pub fn pressure(&self, wm: &Watermarks) -> PressureLevel {
        wm.classify(self.len(), self.capacity())
    }
}

impl<T: Send> Receiver<T> {
    /// Dequeue the next item, if any.
    #[inline]
    pub fn try_recv(&mut self) -> Option<T> {
        match self {
            Receiver::Lamport(r) => r.try_recv(),
            Receiver::FastForward(r) => r.try_recv(),
            Receiver::Mutex(r) => r.try_recv(),
            Receiver::VLink(r) => r.try_recv(),
        }
    }

    /// Dequeue up to `max` items in one burst, appending them to `out`.
    /// Returns how many were received (possibly 0). Index/counter publication
    /// is amortized over the burst, mirroring [`Sender::try_send_batch`].
    #[inline]
    pub fn try_recv_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        match self {
            Receiver::Lamport(r) => r.try_recv_batch(out, max),
            Receiver::FastForward(r) => r.try_recv_batch(out, max),
            Receiver::Mutex(r) => r.try_recv_batch(out, max),
            Receiver::VLink(r) => r.try_recv_batch(out, max),
        }
    }

    /// Current number of queued items, as observable from the consumer side.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Receiver::Lamport(r) => r.len(),
            Receiver::FastForward(r) => r.len(),
            Receiver::Mutex(r) => r.len(),
            Receiver::VLink(r) => r.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Create an SPSC queue of `capacity` items using implementation `kind`.
pub fn queue<T: Send>(kind: QueueKind, capacity: usize) -> (Sender<T>, Receiver<T>) {
    match kind {
        QueueKind::Lamport => {
            let (s, r) = lamport::LamportQueue::with_capacity(capacity);
            (Sender::Lamport(s), Receiver::Lamport(r))
        }
        QueueKind::FastForward => {
            let (s, r) = fastforward::FastForwardQueue::with_capacity(capacity);
            (Sender::FastForward(s), Receiver::FastForward(r))
        }
        QueueKind::Mutex => {
            let (s, r) = mutexq::MutexQueue::with_capacity(capacity);
            (Sender::Mutex(s), Receiver::Mutex(r))
        }
        QueueKind::VLink => {
            let (s, r) = vlink::VLinkQueue::with_capacity(capacity);
            (Sender::VLink(s), Receiver::VLink(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_roundtrip() {
        for kind in QueueKind::ALL {
            let (mut tx, mut rx) = queue::<u32>(kind, 4);
            assert!(tx.is_empty());
            tx.try_send(7).unwrap();
            tx.try_send(8).unwrap();
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.try_recv(), Some(7));
            assert_eq!(rx.try_recv(), Some(8));
            assert_eq!(rx.try_recv(), None);
        }
    }

    #[test]
    fn full_returns_item() {
        for kind in QueueKind::ALL {
            let (mut tx, _rx) = queue::<u32>(kind, 2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            match tx.try_send(3) {
                Err(Full(v)) => assert_eq!(v, 3),
                Ok(()) => panic!("{:?} accepted item beyond capacity", kind.name()),
            }
        }
    }

    #[test]
    fn capacity_reported() {
        for kind in QueueKind::ALL {
            let (tx, _rx) = queue::<u32>(kind, 8);
            assert!(tx.capacity() >= 8, "{}", kind.name());
        }
    }

    #[test]
    fn all_kinds_batch_roundtrip() {
        for kind in QueueKind::ALL {
            let (mut tx, mut rx) = queue::<u32>(kind, 4);
            let mut items: Vec<u32> = (0..6).collect();
            assert_eq!(tx.try_send_batch(&mut items), 4, "{}", kind.name());
            assert_eq!(items, vec![4, 5], "{}", kind.name());
            let mut out = Vec::new();
            assert_eq!(rx.try_recv_batch(&mut out, 10), 4, "{}", kind.name());
            assert_eq!(out, vec![0, 1, 2, 3], "{}", kind.name());
            assert_eq!(tx.try_send_batch(&mut items), 2, "{}", kind.name());
            assert_eq!(rx.try_recv_batch(&mut out, 1), 1, "{}", kind.name());
            assert_eq!(out.last(), Some(&4), "{}", kind.name());
        }
    }

    #[test]
    fn watermarks_classify_by_occupancy() {
        let wm = Watermarks::new(0.25, 0.75);
        assert_eq!(wm.classify(0, 100), PressureLevel::Normal);
        assert_eq!(wm.classify(25, 100), PressureLevel::Normal, "low mark inclusive");
        assert_eq!(wm.classify(26, 100), PressureLevel::Pressured);
        assert_eq!(wm.classify(74, 100), PressureLevel::Pressured);
        assert_eq!(wm.classify(75, 100), PressureLevel::Overloaded, "high mark inclusive");
        assert_eq!(wm.classify(100, 100), PressureLevel::Overloaded);
        assert_eq!(wm.classify(10, 0), PressureLevel::Normal, "zero capacity never signals");
    }

    #[test]
    fn pressure_levels_order_for_max_aggregation() {
        assert!(PressureLevel::Normal < PressureLevel::Pressured);
        assert!(PressureLevel::Pressured < PressureLevel::Overloaded);
        let worst = [PressureLevel::Pressured, PressureLevel::Normal, PressureLevel::Overloaded]
            .into_iter()
            .max()
            .unwrap();
        assert_eq!(worst, PressureLevel::Overloaded);
    }

    #[test]
    fn sender_reports_occupancy_and_pressure() {
        let wm = Watermarks::new(0.25, 0.75);
        for kind in QueueKind::ALL {
            let (mut tx, _rx) = queue::<u32>(kind, 4);
            assert_eq!(tx.pressure(&wm), PressureLevel::Normal, "{}", kind.name());
            for i in 0..4 {
                tx.try_send(i).unwrap();
            }
            assert!(tx.occupancy() >= 0.9, "{}", kind.name());
            assert_eq!(tx.pressure(&wm), PressureLevel::Overloaded, "{}", kind.name());
        }
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::HashSet<_> = QueueKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), QueueKind::ALL.len());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in QueueKind::ALL {
            assert_eq!(kind.as_str().parse::<QueueKind>(), Ok(kind));
            assert_eq!(kind.to_string().parse::<QueueKind>(), Ok(kind));
        }
        let err = "no-such-ring".parse::<QueueKind>().unwrap_err();
        assert_eq!(err, UnknownQueueKind("no-such-ring".to_string()));
        for kind in QueueKind::ALL {
            assert!(err.to_string().contains(kind.as_str()), "error lists every valid name");
        }
    }
}
