//! Virtual-Link-style bounded MPMC ring (the work-stealing fabric queue).
//!
//! The SPSC rings in this crate pin one producer to one consumer, so the
//! monitor must pick a queue per frame and a burst can strand behind one slow
//! VRI while its siblings idle. Virtual Link (arXiv 2012.05181) attacks that
//! cross-core bottleneck with a *shared* ring all consumers pull from; this
//! module is that design in user space: per-slot sequence numbers arbitrate
//! any number of producers and consumers, the shared positions live on their
//! own cache lines, and the batch entry points claim a whole run of slots
//! with **one** CAS on the shared position so the per-burst cost matches the
//! SPSC rings' one-index-publication discipline.
//!
//! Correctness argument (after Vyukov's bounded MPMC queue): every logical
//! position `p` is claimed by exactly one producer (CAS on `tail`) and one
//! consumer (CAS on `head`), and the slot at `p % slots` carries a sequence
//! number that hands the slot back and forth: `seq == p` means "free for the
//! producer of position `p`", `seq == p + 1` means "published for the
//! consumer of position `p`", and the consumer releases the slot to the next
//! lap with `seq = p + slots`. Slot contents are published by the Release
//! store of `seq` and acquired by the matching Acquire load, so no item is
//! ever read before its write completes. Positions are monotonically
//! increasing `usize`s; at 2^64 operations they would wrap, which is
//! unreachable in practice.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::Full;

struct Slot<T> {
    /// Hand-over sequence number (see module docs for the protocol).
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Inner<T> {
    slots: Box<[Slot<T>]>,
    /// Logical capacity. Usually `slots.len()`, except capacity 1: with a
    /// single slot, "published at `p`" (`seq == p + 1`) aliases "free for
    /// `p + 1`" and the producer of `p + 1` would overwrite the unconsumed
    /// item, so a 1-capacity ring gets 2 physical slots and this explicit
    /// occupancy bound.
    capacity: usize,
    /// Next position a consumer will claim. Shared by all consumers.
    head: CachePadded<AtomicUsize>,
    /// Next position a producer will claim. Shared by all producers.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the sequence protocol hands each slot to at most one thread at a
// time (the unique claimant of its position), with Release/Acquire ordering
// on `seq` publishing the contents.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Runs when the last endpoint goes away. Every claim completes within
        // its try_* call, so at this point every position in [head, tail)
        // holds a published, undelivered item — drop each one (mirrors the
        // SPSC rings' destructor-drain, the PR 1 leak fix).
        let slots = self.slots.len();
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for pos in head..tail {
            // SAFETY: &mut self means no endpoint is alive; the slot at
            // pos % slots was published (seq == pos + 1) and never consumed.
            unsafe { (*self.slots[pos % slots].value.get()).assume_init_drop() };
        }
    }
}

/// Factory type; split into endpoints with [`VLinkQueue::with_capacity`].
pub struct VLinkQueue<T>(std::marker::PhantomData<T>);

impl<T: Send> VLinkQueue<T> {
    /// Create a ring holding up to `capacity` items and return one producer
    /// and one consumer handle. Both handles are `Clone`: clone the sender
    /// for more producers, the receiver for more consumers (work stealing).
    pub fn with_capacity(capacity: usize) -> (VLinkSender<T>, VLinkReceiver<T>) {
        assert!(capacity > 0, "queue capacity must be positive");
        // The sequence protocol needs `published(p)` and `free(p + n)` to be
        // distinguishable, which takes at least 2 slots (see `Inner::capacity`).
        let physical = capacity.max(2);
        let slots: Box<[Slot<T>]> = (0..physical)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        let inner = Arc::new(Inner {
            slots,
            capacity,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        });
        (VLinkSender { inner: Arc::clone(&inner) }, VLinkReceiver { inner })
    }
}

/// Producer handle. Cloneable: every clone is an independent producer.
pub struct VLinkSender<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer handle. Cloneable: every clone is an independent consumer
/// (a work-stealing VRI, or the monitor draining the ring at teardown).
pub struct VLinkReceiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for VLinkSender<T> {
    fn clone(&self) -> Self {
        VLinkSender { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Clone for VLinkReceiver<T> {
    fn clone(&self) -> Self {
        VLinkReceiver { inner: Arc::clone(&self.inner) }
    }
}

fn occupancy_between(head: usize, tail: usize, capacity: usize) -> usize {
    tail.saturating_sub(head).min(capacity)
}

impl<T: Send> VLinkSender<T> {
    /// Enqueue `item`, or give it back if the ring is full.
    #[inline]
    pub fn try_send(&self, item: T) -> Result<(), Full<T>> {
        let inner = &*self.inner;
        let slots = inner.slots.len();
        let mut pos = inner.tail.load(Ordering::Relaxed);
        loop {
            // Logical-capacity bound. `head` only grows, so a stale read
            // overestimates occupancy: the check can report full a beat
            // early under concurrency (fine for `try_`), never overfill.
            // A stale `pos` saturates to 0 and falls through to the
            // seq check, which then chases the real tail.
            let head = inner.head.load(Ordering::Relaxed);
            if pos.saturating_sub(head) >= inner.capacity {
                return Err(Full(item));
            }
            let slot = &inner.slots[pos % slots];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot is free for this position: claim it.
                match inner.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: position `pos` is ours alone; the consumer
                        // cannot touch the slot until the Release store below.
                        unsafe { (*slot.value.get()).write(item) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if seq < pos {
                // The consumer of the previous lap hasn't released the slot:
                // the ring is full (possibly transiently, but `try_` answers
                // for this instant).
                return Err(Full(item));
            } else {
                // Another producer claimed `pos`; chase the shared position.
                pos = inner.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Enqueue as many items as fit from the front of `items`, removing the
    /// accepted prefix, claiming the whole run with **one** CAS on the shared
    /// producer position. Returns how many were accepted.
    pub fn try_send_batch(&self, items: &mut Vec<T>) -> usize {
        if items.is_empty() {
            return 0;
        }
        let inner = &*self.inner;
        let slots = inner.slots.len();
        let mut pos = inner.tail.load(Ordering::Relaxed);
        loop {
            // Logical-capacity bound, as in `try_send`: conservative under
            // stale reads, never lets the run overshoot the capacity.
            let head = inner.head.load(Ordering::Relaxed);
            let room = inner.capacity.saturating_sub(pos.saturating_sub(head));
            if room == 0 {
                return 0;
            }
            // Find the free run starting at `pos`: slot p is free for its
            // producer iff seq == p. A free slot cannot become un-free before
            // we claim it (only the unique claimant of that position writes
            // it), so the scan stays valid across the CAS below.
            let mut n = 0;
            while n < items.len().min(room) {
                let slot = &inner.slots[(pos + n) % slots];
                if slot.seq.load(Ordering::Acquire) != pos + n {
                    break;
                }
                n += 1;
            }
            if n == 0 {
                let seq = inner.slots[pos % slots].seq.load(Ordering::Acquire);
                if seq < pos {
                    return 0; // genuinely full
                }
                // A racing producer moved the position; chase it and rescan.
                pos = inner.tail.load(Ordering::Relaxed);
                continue;
            }
            match inner.tail.compare_exchange(pos, pos + n, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    for (k, item) in items.drain(..n).enumerate() {
                        let slot = &inner.slots[(pos + k) % slots];
                        // SAFETY: positions [pos, pos + n) are ours alone;
                        // each slot is invisible to its consumer until the
                        // Release store of its seq.
                        unsafe { (*slot.value.get()).write(item) };
                        slot.seq.store(pos + k + 1, Ordering::Release);
                    }
                    return n;
                }
                Err(now) => pos = now,
            }
        }
    }

    /// Items currently buffered (racy estimate; exact when quiescent).
    #[inline]
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Relaxed);
        occupancy_between(head, tail, self.inner.capacity)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

impl<T: Send> VLinkReceiver<T> {
    /// Dequeue the next item, if any.
    #[inline]
    pub fn try_recv(&self) -> Option<T> {
        let inner = &*self.inner;
        let slots = inner.slots.len();
        let mut pos = inner.head.load(Ordering::Relaxed);
        loop {
            let slot = &inner.slots[pos % slots];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                // Published for this position: claim it.
                match inner.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: position `pos` is ours alone and the
                        // producer's Release store (matched by the Acquire
                        // load above) published the contents.
                        let item = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos + slots, Ordering::Release);
                        return Some(item);
                    }
                    Err(now) => pos = now,
                }
            } else if seq <= pos {
                // Nothing published at this position yet: empty (for now).
                return None;
            } else {
                // Another consumer claimed `pos`; chase the shared position.
                pos = inner.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue up to `max` items into `out`, claiming the whole run with
    /// **one** CAS on the shared consumer position (a work-stealing burst).
    /// Returns how many were appended.
    pub fn try_recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let inner = &*self.inner;
        let slots = inner.slots.len();
        let mut pos = inner.head.load(Ordering::Relaxed);
        loop {
            // Find the published run starting at `pos`: slot p is published
            // iff seq == p + 1. A published slot stays published until its
            // unique consumer (us, once the CAS lands) reads it.
            let mut n = 0;
            while n < max {
                let slot = &inner.slots[(pos + n) % slots];
                if slot.seq.load(Ordering::Acquire) != pos + n + 1 {
                    break;
                }
                n += 1;
            }
            if n == 0 {
                let seq = inner.slots[pos % slots].seq.load(Ordering::Acquire);
                if seq <= pos {
                    return 0; // genuinely empty
                }
                // A racing consumer moved the position; chase it and rescan.
                pos = inner.head.load(Ordering::Relaxed);
                continue;
            }
            match inner.head.compare_exchange(pos, pos + n, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    out.reserve(n);
                    for k in 0..n {
                        let slot = &inner.slots[(pos + k) % slots];
                        // SAFETY: positions [pos, pos + n) are ours alone;
                        // each slot was published by its producer's Release
                        // store, matched by the Acquire scan above.
                        out.push(unsafe { (*slot.value.get()).assume_init_read() });
                        slot.seq.store(pos + k + slots, Ordering::Release);
                    }
                    return n;
                }
                Err(now) => pos = now,
            }
        }
    }

    /// Items currently buffered (racy estimate; exact when quiescent).
    #[inline]
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Relaxed);
        occupancy_between(head, tail, self.inner.capacity)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved_spsc() {
        let (tx, rx) = VLinkQueue::with_capacity(8);
        for i in 0..8 {
            tx.try_send(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn full_and_empty_detection() {
        let (tx, rx) = VLinkQueue::with_capacity(2);
        assert!(rx.try_recv().is_none());
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(Full(3)));
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), Some(3));
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn wraps_around_many_times() {
        let (tx, rx) = VLinkQueue::with_capacity(3);
        for round in 0..100u32 {
            tx.try_send(round).unwrap();
            assert_eq!(rx.try_recv(), Some(round));
        }
    }

    #[test]
    fn batch_send_accepts_prefix_and_keeps_rest() {
        let (tx, rx) = VLinkQueue::with_capacity(4);
        let mut items: Vec<u32> = (0..7).collect();
        assert_eq!(tx.try_send_batch(&mut items), 4);
        assert_eq!(items, vec![4, 5, 6], "unaccepted suffix stays put");
        for i in 0..4 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(tx.try_send_batch(&mut items), 3);
        assert!(items.is_empty());
    }

    #[test]
    fn batch_recv_respects_max_and_order() {
        let (tx, rx) = VLinkQueue::with_capacity(8);
        for i in 0..6u32 {
            tx.try_send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.try_recv_batch(&mut out, 100), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.try_recv_batch(&mut out, 4), 0, "empty ring");
    }

    #[test]
    fn len_tracks_occupancy_from_both_ends() {
        let (tx, rx) = VLinkQueue::with_capacity(4);
        assert_eq!(tx.len(), 0);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.try_recv();
        assert_eq!(tx.len(), 1);
        assert_eq!(rx.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = VLinkQueue::<u8>::with_capacity(0);
    }

    /// Capacity 1 needs the explicit occupancy bound: with one physical slot
    /// the seq protocol would let the producer of `p + 1` overwrite the
    /// unconsumed item at `p`.
    #[test]
    fn capacity_one_is_a_bounded_fifo() {
        let (tx, rx) = VLinkQueue::with_capacity(1);
        assert_eq!(tx.capacity(), 1);
        assert_eq!(rx.capacity(), 1);
        for round in 0..5u32 {
            tx.try_send(round).unwrap();
            assert_eq!(tx.try_send(99), Err(Full(99)), "round {round}");
            assert_eq!(tx.len(), 1);
            assert_eq!(rx.try_recv(), Some(round));
            assert_eq!(rx.try_recv(), None);
        }
        let mut items = vec![7u32, 8];
        assert_eq!(tx.try_send_batch(&mut items), 1, "batch admits only the capacity");
        assert_eq!(items, vec![8]);
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(&mut out, 10), 1);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn drop_runs_destructors_of_queued_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let (tx, rx) = VLinkQueue::with_capacity(4);
        tx.try_send(D).unwrap();
        tx.try_send(D).unwrap();
        drop(rx);
        tx.try_send(D).unwrap();
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "no drops while queued");
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn cloned_receivers_partition_the_stream() {
        let (tx, rx_a) = VLinkQueue::with_capacity(16);
        let rx_b = rx_a.clone();
        for i in 0..10u32 {
            tx.try_send(i).unwrap();
        }
        let mut got = Vec::new();
        loop {
            match (rx_a.try_recv(), rx_b.try_recv()) {
                (None, None) => break,
                (a, b) => got.extend(a.into_iter().chain(b)),
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<u32>>());
    }

    const STRESS: u64 = if cfg!(miri) { 200 } else { 100_000 };

    /// Two producers, two consumers, batch entry points: every element
    /// arrives exactly once and per-producer order is preserved.
    #[test]
    fn mpmc_stress_exactly_once_per_producer_fifo() {
        let (tx_a, rx_a) = VLinkQueue::with_capacity(32);
        let tx_b = tx_a.clone();
        let rx_b = rx_a.clone();
        // Producer p tags its items with p << 32 so per-producer order is
        // checkable after the consumers' streams are merged.
        let producers: Vec<_> = [tx_a, tx_b]
            .into_iter()
            .enumerate()
            .map(|(p, tx)| {
                std::thread::spawn(move || {
                    let tag = (p as u64) << 32;
                    let mut pending: Vec<u64> = Vec::new();
                    let mut next = 0u64;
                    while next < STRESS || !pending.is_empty() {
                        while pending.len() < 9 && next < STRESS {
                            pending.push(tag | next);
                            next += 1;
                        }
                        if tx.try_send_batch(&mut pending) == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let received = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = [rx_a, rx_b]
            .into_iter()
            .map(|rx| {
                let received = Arc::clone(&received);
                std::thread::spawn(move || {
                    let total = 2 * STRESS as usize;
                    let mut got: Vec<u64> = Vec::new();
                    // Drain until the two consumers have jointly received
                    // every element either producer will ever send.
                    while received.load(Ordering::SeqCst) < total {
                        let n = rx.try_recv_batch(&mut got, 7);
                        if n == 0 {
                            std::thread::yield_now();
                        } else {
                            received.fetch_add(n, Ordering::SeqCst);
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let streams: Vec<Vec<u64>> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
        let mut all: Vec<u64> = streams.iter().flatten().copied().collect();
        // Exactly once: 2 × STRESS distinct values, no dup, no loss.
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..STRESS).flat_map(|i| [i, (1u64 << 32) | i]).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
        // Per-producer FIFO within each consumer's stream.
        for stream in &streams {
            for p in 0..2u64 {
                let tagged: Vec<u64> = stream.iter().copied().filter(|v| v >> 32 == p).collect();
                assert!(tagged.windows(2).all(|w| w[0] < w[1]), "per-producer order");
            }
        }
    }
}
