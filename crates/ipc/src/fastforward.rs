//! FastForward-style cache-optimized SPSC queue (the paper's cited \[17\]).
//!
//! Lamport's ring shares two index words between the threads; every full/empty
//! probe can ping-pong a cache line. FastForward (Giacomoni et al., PPoPP'08)
//! removes the shared indices entirely: each *slot* carries its own occupancy
//! flag, the producer and consumer keep private positions, and the only
//! cross-thread cache traffic is the slot being handed over. We implement the
//! same idea with a per-slot `AtomicBool` next to the payload.
//!
//! Because the endpoints never read each other's position, a producer-side
//! `len()` cannot be exact; we maintain an approximate occupancy counter with
//! Relaxed arithmetic — the load estimator (paper §3.4) smooths it with an
//! EWMA anyway, so a transiently stale value is harmless.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::Full;

struct Slot<T> {
    /// `true` when `value` holds an item the consumer may take.
    full: AtomicBool,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Inner<T> {
    slots: Box<[CachePadded<Slot<T>>]>,
    /// Approximate occupancy for observers (see module docs).
    approx_len: CachePadded<AtomicUsize>,
}

// SAFETY: each slot's flag hands exclusive ownership of `value` back and
// forth between exactly one producer and one consumer.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Runs once both endpoints are gone (last Arc clone dropped), so
        // every still-full slot holds an undelivered item — including ones
        // pushed after the receiver went away. `get_mut` needs no ordering:
        // we have exclusive access.
        for slot in self.slots.iter_mut() {
            if *slot.full.get_mut() {
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

/// Factory type; split into endpoints with [`FastForwardQueue::with_capacity`].
pub struct FastForwardQueue<T>(std::marker::PhantomData<T>);

impl<T: Send> FastForwardQueue<T> {
    /// Create a queue with `capacity` slots and split it into endpoints.
    pub fn with_capacity(capacity: usize) -> (FfSender<T>, FfReceiver<T>) {
        assert!(capacity > 0, "queue capacity must be positive");
        let slots: Box<[CachePadded<Slot<T>>]> = (0..capacity)
            .map(|_| {
                CachePadded::new(Slot {
                    full: AtomicBool::new(false),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
            })
            .collect();
        let inner = Arc::new(Inner { slots, approx_len: CachePadded::new(AtomicUsize::new(0)) });
        (FfSender { inner: Arc::clone(&inner), pos: 0 }, FfReceiver { inner, pos: 0 })
    }
}

/// Producer endpoint.
pub struct FfSender<T> {
    inner: Arc<Inner<T>>,
    /// Private write position (never shared).
    pos: usize,
}

/// Consumer endpoint.
pub struct FfReceiver<T> {
    inner: Arc<Inner<T>>,
    /// Private read position (never shared).
    pos: usize,
}

impl<T: Send> FfSender<T> {
    #[inline]
    pub fn try_send(&mut self, item: T) -> Result<(), Full<T>> {
        let slot = &self.inner.slots[self.pos];
        // Acquire pairs with the consumer's Release clear, so the slot's
        // previous payload has been fully taken before we overwrite.
        if slot.full.load(Ordering::Acquire) {
            return Err(Full(item));
        }
        // SAFETY: flag is false, so the consumer will not touch this slot
        // until our Release store below publishes it.
        unsafe { (*slot.value.get()).write(item) };
        slot.full.store(true, Ordering::Release);
        self.pos = if self.pos + 1 == self.inner.slots.len() { 0 } else { self.pos + 1 };
        self.inner.approx_len.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Send up to `items.len()` items in one burst, draining the accepted
    /// prefix from `items`. Returns how many were accepted.
    ///
    /// The occupancy flags are inherently per-slot in FastForward, so unlike
    /// Lamport there is no shared index to batch; what the burst amortizes is
    /// the `approx_len` read-modify-write, issued once instead of per item.
    /// A first pass counts the empty run (only this producer sets flags true,
    /// so an empty slot stays empty), then the write pass fills exactly that
    /// run.
    pub fn try_send_batch(&mut self, items: &mut Vec<T>) -> usize {
        if items.is_empty() {
            return 0;
        }
        let slots = self.inner.slots.len();
        let want = items.len().min(slots);
        let mut free = 0;
        let mut probe = self.pos;
        while free < want {
            if self.inner.slots[probe].full.load(Ordering::Acquire) {
                break;
            }
            free += 1;
            probe = if probe + 1 == slots { 0 } else { probe + 1 };
        }
        if free == 0 {
            return 0;
        }
        for item in items.drain(..free) {
            let slot = &self.inner.slots[self.pos];
            // SAFETY: the scan above saw this flag false, and only this
            // producer can set it true, so the slot is still ours.
            unsafe { (*slot.value.get()).write(item) };
            slot.full.store(true, Ordering::Release);
            self.pos = if self.pos + 1 == slots { 0 } else { self.pos + 1 };
        }
        self.inner.approx_len.fetch_add(free, Ordering::Relaxed);
        free
    }

    /// Approximate queued-item count (see module docs).
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.approx_len.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }
}

impl<T: Send> FfReceiver<T> {
    #[inline]
    pub fn try_recv(&mut self) -> Option<T> {
        let slot = &self.inner.slots[self.pos];
        if !slot.full.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: flag is true, so the producer published this payload and
        // will not touch the slot until we clear the flag with Release.
        let item = unsafe { (*slot.value.get()).assume_init_read() };
        slot.full.store(false, Ordering::Release);
        self.pos = if self.pos + 1 == self.inner.slots.len() { 0 } else { self.pos + 1 };
        self.inner.approx_len.fetch_sub(1, Ordering::Relaxed);
        Some(item)
    }

    /// Receive up to `max` items in one burst, appending them to `out`.
    /// Returns how many were received. The `approx_len` counter is adjusted
    /// once for the whole burst (see [`FfSender::try_send_batch`]).
    pub fn try_recv_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let slots = self.inner.slots.len();
        let want = max.min(slots);
        let mut taken = 0;
        out.reserve(want);
        while taken < want {
            let slot = &self.inner.slots[self.pos];
            if !slot.full.load(Ordering::Acquire) {
                break;
            }
            // SAFETY: flag is true — the producer published this payload and
            // will not touch the slot until we clear the flag.
            out.push(unsafe { (*slot.value.get()).assume_init_read() });
            slot.full.store(false, Ordering::Release);
            self.pos = if self.pos + 1 == slots { 0 } else { self.pos + 1 };
            taken += 1;
        }
        if taken > 0 {
            self.inner.approx_len.fetch_sub(taken, Ordering::Relaxed);
        }
        taken
    }

    /// Approximate queued-item count.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.approx_len.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let (mut tx, mut rx) = FastForwardQueue::with_capacity(8);
        for i in 0..8 {
            tx.try_send(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn full_when_all_slots_occupied() {
        let (mut tx, mut rx) = FastForwardQueue::with_capacity(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(Full(3)));
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn approximate_len_settles_when_quiescent() {
        let (mut tx, mut rx) = FastForwardQueue::with_capacity(8);
        for i in 0..5 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx.len(), 5);
        rx.try_recv();
        rx.try_recv();
        assert_eq!(tx.len(), 3);
    }

    #[test]
    fn cross_thread_transfer_preserves_order() {
        let (mut tx, mut rx) = FastForwardQueue::with_capacity(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.try_send(v) {
                        Ok(()) => break,
                        Err(Full(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = rx.try_recv() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn drop_runs_destructors_of_queued_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let (mut tx, rx) = FastForwardQueue::with_capacity(4);
        tx.try_send(D).unwrap();
        tx.try_send(D).unwrap();
        tx.try_send(D).unwrap();
        drop(rx);
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    /// Regression: items pushed after the receiver dropped used to leak when
    /// the drain lived in `FfReceiver::drop`. The queue's own Drop now scans
    /// every slot.
    #[test]
    fn send_after_receiver_drop_still_runs_destructors() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let (mut tx, rx) = FastForwardQueue::with_capacity(4);
        tx.try_send(D).unwrap();
        drop(rx);
        tx.try_send(D).unwrap();
        tx.try_send(D).unwrap();
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "no drops while queued");
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn batch_send_accepts_free_run_only() {
        let (mut tx, mut rx) = FastForwardQueue::with_capacity(4);
        let mut items: Vec<u32> = (0..7).collect();
        assert_eq!(tx.try_send_batch(&mut items), 4);
        assert_eq!(items, vec![4, 5, 6]);
        assert_eq!(tx.try_send_batch(&mut items), 0, "all slots full");
        for i in 0..4 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(tx.try_send_batch(&mut items), 3);
        assert!(items.is_empty());
    }

    #[test]
    fn batch_recv_respects_max_and_order() {
        let (mut tx, mut rx) = FastForwardQueue::with_capacity(8);
        for i in 0..6u32 {
            tx.try_send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.try_recv_batch(&mut out, 100), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.try_recv_batch(&mut out, 4), 0);
        assert_eq!(tx.len(), 0, "approx_len settles after batch ops");
    }

    #[test]
    fn batch_cross_thread_transfer_preserves_order() {
        let (mut tx, mut rx) = FastForwardQueue::with_capacity(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            let mut pending: Vec<u64> = Vec::new();
            let mut next = 0u64;
            while next < N || !pending.is_empty() {
                while pending.len() < 17 && next < N {
                    pending.push(next);
                    next += 1;
                }
                if tx.try_send_batch(&mut pending) == 0 {
                    std::hint::spin_loop();
                }
            }
        });
        let mut out = Vec::with_capacity(N as usize);
        while out.len() < N as usize {
            if rx.try_recv_batch(&mut out, 23) == 0 {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(out.iter().copied().eq(0..N));
    }
}
