//! Queue bundles in the shapes LVRM uses them.
//!
//! Each VRI is wired to LVRM with **two pairs** of queues (paper §2.1,
//! Fig. 2.1): an incoming/outgoing *data queue* pair carrying raw frames, and
//! an incoming/outgoing *control queue* pair carrying inter-VRI control
//! events. Control queues have strict priority: "each VRI first processes any
//! control event available in its incoming control queue, and then processes
//! data frames available in its incoming data queue."

use crate::{queue, QueueKind, Receiver, Sender};

/// A control event exchanged between VRIs (via LVRM). The payload is opaque
/// to LVRM — the paper lets users "communicate with each other VRIs via their
/// user-specified protocols similar to the UDP socket programming" (§3.7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControlEvent {
    /// VRI that emitted the event.
    pub src_vri: u32,
    /// VRI the event is addressed to.
    pub dst_vri: u32,
    /// Timestamp at emission, ns (used by the message-passing latency bench).
    pub ts_ns: u64,
    /// User-defined payload.
    pub payload: Vec<u8>,
}

impl ControlEvent {
    pub fn new(src_vri: u32, dst_vri: u32, payload: Vec<u8>) -> ControlEvent {
        ControlEvent { src_vri, dst_vri, ts_ns: 0, payload }
    }
}

/// Create both directions of a queue pair: `(lvrm→vri, vri→lvrm)`, returning
/// `((tx, rx), (tx, rx))` where the first tuple is held `tx` by LVRM and `rx`
/// by the VRI, and the second the other way around.
#[allow(clippy::type_complexity)]
pub fn duplex<T: Send>(
    kind: QueueKind,
    capacity: usize,
) -> ((Sender<T>, Receiver<T>), (Sender<T>, Receiver<T>)) {
    (queue(kind, capacity), queue(kind, capacity))
}

/// One unit of work a VRI pulls off its queues.
#[derive(Debug)]
pub enum Work<F> {
    /// A control event (always delivered before any data).
    Control(ControlEvent),
    /// A data frame.
    Data(F),
}

/// LVRM's side of a VRI's queues.
pub struct VriChannels<F> {
    /// Data frames LVRM dispatches to the VRI.
    pub data_tx: Sender<F>,
    /// Forwarded frames coming back from the VRI.
    pub data_rx: Receiver<F>,
    /// Control events LVRM relays *to* this VRI.
    pub ctrl_tx: Sender<ControlEvent>,
    /// Control events this VRI emits (LVRM relays them onward).
    pub ctrl_rx: Receiver<ControlEvent>,
}

/// The VRI's side of its queues.
pub struct VriEndpoint<F> {
    /// Data frames arriving from LVRM.
    pub data_rx: Receiver<F>,
    /// Forwarded frames handed back to LVRM.
    pub data_tx: Sender<F>,
    /// Control events arriving from LVRM.
    pub ctrl_rx: Receiver<ControlEvent>,
    /// Control events this VRI emits.
    pub ctrl_tx: Sender<ControlEvent>,
}

impl<F: Send> VriEndpoint<F> {
    /// Pull the next unit of work, giving control events strict priority
    /// over data frames (paper §2.1).
    #[inline]
    pub fn next_work(&mut self) -> Option<Work<F>> {
        if let Some(ev) = self.ctrl_rx.try_recv() {
            return Some(Work::Control(ev));
        }
        self.data_rx.try_recv().map(Work::Data)
    }
}

/// Build the full queue fabric for one VRI.
///
/// `data_capacity` sizes the data queues; control queues are sized
/// `ctrl_capacity` (typically much smaller — control traffic is sparse).
pub fn vri_channels<F: Send>(
    kind: QueueKind,
    data_capacity: usize,
    ctrl_capacity: usize,
) -> (VriChannels<F>, VriEndpoint<F>) {
    let ((data_tx, vri_data_rx), (vri_data_tx, data_rx)) = duplex::<F>(kind, data_capacity);
    let ((ctrl_tx, vri_ctrl_rx), (vri_ctrl_tx, ctrl_rx)) =
        duplex::<ControlEvent>(kind, ctrl_capacity);
    (
        VriChannels { data_tx, data_rx, ctrl_tx, ctrl_rx },
        VriEndpoint {
            data_rx: vri_data_rx,
            data_tx: vri_data_tx,
            ctrl_rx: vri_ctrl_rx,
            ctrl_tx: vri_ctrl_tx,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip_through_vri() {
        for kind in QueueKind::ALL {
            let (mut lvrm, mut vri) = vri_channels::<u64>(kind, 8, 4);
            lvrm.data_tx.try_send(42).unwrap();
            match vri.next_work() {
                Some(Work::Data(v)) => assert_eq!(v, 42),
                other => panic!("unexpected work: {other:?}"),
            }
            vri.data_tx.try_send(42).unwrap();
            assert_eq!(lvrm.data_rx.try_recv(), Some(42));
        }
    }

    #[test]
    fn control_has_priority_over_data() {
        let (mut lvrm, mut vri) = vri_channels::<u64>(QueueKind::Lamport, 8, 4);
        lvrm.data_tx.try_send(1).unwrap();
        lvrm.data_tx.try_send(2).unwrap();
        lvrm.ctrl_tx.try_send(ControlEvent::new(0, 1, vec![9])).unwrap();
        // The control event arrived last but must be delivered first.
        assert!(matches!(vri.next_work(), Some(Work::Control(ev)) if ev.payload == [9]));
        assert!(matches!(vri.next_work(), Some(Work::Data(1))));
        assert!(matches!(vri.next_work(), Some(Work::Data(2))));
        assert!(vri.next_work().is_none());
    }

    #[test]
    fn control_events_flow_upstream() {
        let (mut lvrm, mut vri) = vri_channels::<u64>(QueueKind::FastForward, 8, 4);
        vri.ctrl_tx.try_send(ControlEvent::new(3, 0, b"sync".to_vec())).unwrap();
        let ev = lvrm.ctrl_rx.try_recv().unwrap();
        assert_eq!(ev.src_vri, 3);
        assert_eq!(ev.payload, b"sync");
    }
}
