//! Queue bundles in the shapes LVRM uses them.
//!
//! Each VRI is wired to LVRM with **two pairs** of queues (paper §2.1,
//! Fig. 2.1): an incoming/outgoing *data queue* pair carrying raw frames, and
//! an incoming/outgoing *control queue* pair carrying inter-VRI control
//! events. Control queues have strict priority: "each VRI first processes any
//! control event available in its incoming control queue, and then processes
//! data frames available in its incoming data queue."

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::vlink::{VLinkQueue, VLinkReceiver, VLinkSender};
use crate::{queue, QueueKind, Receiver, Sender};

/// A control event exchanged between VRIs (via LVRM). The payload is opaque
/// to LVRM — the paper lets users "communicate with each other VRIs via their
/// user-specified protocols similar to the UDP socket programming" (§3.7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControlEvent {
    /// VRI that emitted the event.
    pub src_vri: u32,
    /// VRI the event is addressed to.
    pub dst_vri: u32,
    /// Timestamp at emission, ns (used by the message-passing latency bench).
    pub ts_ns: u64,
    /// User-defined payload.
    pub payload: Vec<u8>,
}

impl ControlEvent {
    pub fn new(src_vri: u32, dst_vri: u32, payload: Vec<u8>) -> ControlEvent {
        ControlEvent { src_vri, dst_vri, ts_ns: 0, payload }
    }
}

/// Create both directions of a queue pair: `(lvrm→vri, vri→lvrm)`, returning
/// `((tx, rx), (tx, rx))` where the first tuple is held `tx` by LVRM and `rx`
/// by the VRI, and the second the other way around.
#[allow(clippy::type_complexity)]
pub fn duplex<T: Send>(
    kind: QueueKind,
    capacity: usize,
) -> ((Sender<T>, Receiver<T>), (Sender<T>, Receiver<T>)) {
    (queue(kind, capacity), queue(kind, capacity))
}

/// One unit of work a VRI pulls off its queues.
#[derive(Debug)]
pub enum Work<F> {
    /// A control event (always delivered before any data).
    Control(ControlEvent),
    /// A data frame.
    Data(F),
}

/// Shared attachment flag between a [`VriEndpoint`] and the monitor-side
/// [`VriChannels`]. While the endpoint (or a clone of this handle) is live the
/// flag reads `true`; dropping the endpoint — e.g. the VRI process crashing
/// and unwinding — or calling [`Attachment::detach`] flips it to `false`,
/// which the supervisor reads as "peer is gone".
#[derive(Clone, Debug)]
pub struct Attachment {
    flag: Arc<AtomicBool>,
}

impl Attachment {
    fn new() -> Attachment {
        Attachment { flag: Arc::new(AtomicBool::new(true)) }
    }

    /// Mark the endpoint as gone. Idempotent.
    pub fn detach(&self) {
        self.flag.store(false, Ordering::Release);
    }

    /// Whether the VRI side of the queue fabric is still attached.
    pub fn is_attached(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Owned by the endpoint: detaches on drop so a crashed (unwound) VRI is
/// observable from the monitor side even if nobody calls `detach` explicitly.
#[derive(Debug)]
struct AttachGuard {
    attachment: Attachment,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        self.attachment.detach();
    }
}

/// LVRM's side of a VRI's queues.
pub struct VriChannels<F> {
    /// Data frames LVRM dispatches to the VRI.
    pub data_tx: Sender<F>,
    /// Forwarded frames coming back from the VRI.
    pub data_rx: Receiver<F>,
    /// Control events LVRM relays *to* this VRI.
    pub ctrl_tx: Sender<ControlEvent>,
    /// Control events this VRI emits (LVRM relays them onward).
    pub ctrl_rx: Receiver<ControlEvent>,
    peer: Attachment,
}

impl<F> VriChannels<F> {
    /// Whether the matching [`VriEndpoint`] still exists (has neither been
    /// dropped nor explicitly detached).
    pub fn endpoint_attached(&self) -> bool {
        self.peer.is_attached()
    }
}

/// The VRI's side of its queues.
pub struct VriEndpoint<F> {
    /// Data frames arriving from LVRM.
    pub data_rx: Receiver<F>,
    /// Forwarded frames handed back to LVRM.
    pub data_tx: Sender<F>,
    /// Control events arriving from LVRM.
    pub ctrl_rx: Receiver<ControlEvent>,
    /// Control events this VRI emits.
    pub ctrl_tx: Sender<ControlEvent>,
    /// Shared per-VR ingress ring (VLink fabric): all of the VR's VRIs hold a
    /// clone of the same consumer and steal bursts from it. `None` outside
    /// the VLink fabric; the point-to-point `data_rx` still exists alongside
    /// it (rehomed frames and drains go point-to-point).
    pub shared_rx: Option<VLinkReceiver<F>>,
    guard: AttachGuard,
}

impl<F: Send> VriEndpoint<F> {
    /// Pull the next unit of work, giving control events strict priority
    /// over data frames (paper §2.1). Point-to-point data outranks the
    /// shared ring: frames addressed to *this* VRI (rehomes, drains) go
    /// before stolen work.
    #[inline]
    pub fn next_work(&mut self) -> Option<Work<F>> {
        if let Some(ev) = self.ctrl_rx.try_recv() {
            return Some(Work::Control(ev));
        }
        if let Some(frame) = self.data_rx.try_recv() {
            return Some(Work::Data(frame));
        }
        self.shared_rx.as_ref().and_then(|ring| ring.try_recv()).map(Work::Data)
    }

    /// Steal up to `max` data frames in one burst: the point-to-point queue
    /// first, then the shared ring for whatever budget remains. Returns how
    /// many were appended to `out`.
    pub fn steal_batch(&mut self, out: &mut Vec<F>, max: usize) -> usize {
        let mut got = self.data_rx.try_recv_batch(out, max);
        if let Some(ring) = &self.shared_rx {
            if got < max {
                got += ring.try_recv_batch(out, max - got);
            }
        }
        got
    }
}

impl<F> VriEndpoint<F> {
    /// Explicitly mark this endpoint detached (the drop guard does the same
    /// implicitly). Useful when the endpoint object is kept around for the
    /// supervisor to reap its in-flight frames, but the VRI behind it is gone.
    pub fn detach(&self) {
        self.guard.attachment.detach();
    }

    /// A cloneable handle onto the attachment flag, e.g. so a host can flip
    /// it *after* stashing the endpoint for reaping (avoids the race where
    /// the supervisor sees "detached" before the endpoint is reapable).
    pub fn attachment(&self) -> Attachment {
        self.guard.attachment.clone()
    }
}

/// Build the full queue fabric for one VRI.
///
/// `data_capacity` sizes the data queues; control queues are sized
/// `ctrl_capacity` (typically much smaller — control traffic is sparse).
pub fn vri_channels<F: Send>(
    kind: QueueKind,
    data_capacity: usize,
    ctrl_capacity: usize,
) -> (VriChannels<F>, VriEndpoint<F>) {
    vri_channels_with_ring(kind, data_capacity, ctrl_capacity, None)
}

/// Like [`vri_channels`], but additionally hands the endpoint a consumer
/// clone of the VR's shared ingress ring (the VLink work-stealing fabric).
pub fn vri_channels_with_ring<F: Send>(
    kind: QueueKind,
    data_capacity: usize,
    ctrl_capacity: usize,
    shared_rx: Option<VLinkReceiver<F>>,
) -> (VriChannels<F>, VriEndpoint<F>) {
    let ((data_tx, vri_data_rx), (vri_data_tx, data_rx)) = duplex::<F>(kind, data_capacity);
    let ((ctrl_tx, vri_ctrl_rx), (vri_ctrl_tx, ctrl_rx)) =
        duplex::<ControlEvent>(kind, ctrl_capacity);
    let attachment = Attachment::new();
    (
        VriChannels { data_tx, data_rx, ctrl_tx, ctrl_rx, peer: attachment.clone() },
        VriEndpoint {
            data_rx: vri_data_rx,
            data_tx: vri_data_tx,
            ctrl_rx: vri_ctrl_rx,
            ctrl_tx: vri_ctrl_tx,
            shared_rx,
            guard: AttachGuard { attachment },
        },
    )
}

/// Build one VR's shared ingress ring: the monitor keeps the producer (and a
/// consumer clone for teardown drains); each VRI endpoint gets a consumer
/// clone via [`vri_channels_with_ring`].
pub fn shared_ring<F: Send>(capacity: usize) -> (VLinkSender<F>, VLinkReceiver<F>) {
    VLinkQueue::with_capacity(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip_through_vri() {
        for kind in QueueKind::ALL {
            let (mut lvrm, mut vri) = vri_channels::<u64>(kind, 8, 4);
            lvrm.data_tx.try_send(42).unwrap();
            match vri.next_work() {
                Some(Work::Data(v)) => assert_eq!(v, 42),
                other => panic!("unexpected work: {other:?}"),
            }
            vri.data_tx.try_send(42).unwrap();
            assert_eq!(lvrm.data_rx.try_recv(), Some(42));
        }
    }

    #[test]
    fn control_has_priority_over_data() {
        let (mut lvrm, mut vri) = vri_channels::<u64>(QueueKind::Lamport, 8, 4);
        lvrm.data_tx.try_send(1).unwrap();
        lvrm.data_tx.try_send(2).unwrap();
        lvrm.ctrl_tx.try_send(ControlEvent::new(0, 1, vec![9])).unwrap();
        // The control event arrived last but must be delivered first.
        assert!(matches!(vri.next_work(), Some(Work::Control(ev)) if ev.payload == [9]));
        assert!(matches!(vri.next_work(), Some(Work::Data(1))));
        assert!(matches!(vri.next_work(), Some(Work::Data(2))));
        assert!(vri.next_work().is_none());
    }

    #[test]
    fn dropping_the_endpoint_detaches_it() {
        for kind in QueueKind::ALL {
            let (lvrm, vri) = vri_channels::<u64>(kind, 8, 4);
            assert!(lvrm.endpoint_attached());
            drop(vri);
            assert!(!lvrm.endpoint_attached());
        }
    }

    #[test]
    fn explicit_detach_survives_a_kept_endpoint() {
        let (mut lvrm, mut vri) = vri_channels::<u64>(QueueKind::Mutex, 8, 4);
        lvrm.data_tx.try_send(7).unwrap();
        vri.detach();
        assert!(!lvrm.endpoint_attached());
        // The endpoint object is still usable for reaping in-flight frames.
        assert!(matches!(vri.next_work(), Some(Work::Data(7))));
    }

    #[test]
    fn attachment_handle_detaches_after_the_fact() {
        let (lvrm, vri) = vri_channels::<u64>(QueueKind::Lamport, 8, 4);
        let handle = vri.attachment();
        assert!(handle.is_attached());
        // Host stashes the endpoint for reaping *first*, then flips the flag.
        let _stashed = vri;
        handle.detach();
        assert!(!lvrm.endpoint_attached());
    }

    #[test]
    fn control_events_flow_upstream() {
        let (mut lvrm, mut vri) = vri_channels::<u64>(QueueKind::FastForward, 8, 4);
        vri.ctrl_tx.try_send(ControlEvent::new(3, 0, b"sync".to_vec())).unwrap();
        let ev = lvrm.ctrl_rx.try_recv().unwrap();
        assert_eq!(ev.src_vri, 3);
        assert_eq!(ev.payload, b"sync");
    }
}
