//! Lock-based SPSC queue baseline.
//!
//! The paper argues lock-free IPC "is more efficient than the lock-based
//! synchronization, in which only one process can access the queue at one
//! time" (§3.5). This mutex-guarded ring exists so the `ipc_queue` ablation
//! bench can quantify that claim instead of asserting it.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::Full;

struct Inner<T> {
    q: Mutex<VecDeque<T>>,
    capacity: usize,
}

/// Factory type; split into endpoints with [`MutexQueue::with_capacity`].
pub struct MutexQueue<T>(std::marker::PhantomData<T>);

impl<T: Send> MutexQueue<T> {
    pub fn with_capacity(capacity: usize) -> (MutexSender<T>, MutexReceiver<T>) {
        assert!(capacity > 0, "queue capacity must be positive");
        let inner = Arc::new(Inner { q: Mutex::new(VecDeque::with_capacity(capacity)), capacity });
        (MutexSender { inner: Arc::clone(&inner) }, MutexReceiver { inner })
    }
}

/// Producer endpoint.
pub struct MutexSender<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer endpoint.
pub struct MutexReceiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T: Send> MutexSender<T> {
    #[inline]
    pub fn try_send(&mut self, item: T) -> Result<(), Full<T>> {
        let mut q = self.inner.q.lock();
        if q.len() >= self.inner.capacity {
            return Err(Full(item));
        }
        q.push_back(item);
        Ok(())
    }

    /// Send up to `items.len()` items under a single lock acquisition,
    /// draining the accepted prefix from `items`. Returns how many fit.
    pub fn try_send_batch(&mut self, items: &mut Vec<T>) -> usize {
        if items.is_empty() {
            return 0;
        }
        let mut q = self.inner.q.lock();
        let free = self.inner.capacity.saturating_sub(q.len());
        let n = free.min(items.len());
        q.extend(items.drain(..n));
        n
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.inner.q.lock().len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

impl<T: Send> MutexReceiver<T> {
    #[inline]
    pub fn try_recv(&mut self) -> Option<T> {
        self.inner.q.lock().pop_front()
    }

    /// Receive up to `max` items under a single lock acquisition, appending
    /// them to `out`. Returns how many were received.
    pub fn try_recv_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut q = self.inner.q.lock();
        let n = q.len().min(max);
        out.extend(q.drain(..n));
        n
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.inner.q.lock().len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_capacity() {
        let (mut tx, mut rx) = MutexQueue::with_capacity(2);
        tx.try_send('a').unwrap();
        tx.try_send('b').unwrap();
        assert_eq!(tx.try_send('c'), Err(Full('c')));
        assert_eq!(rx.try_recv(), Some('a'));
        assert_eq!(rx.try_recv(), Some('b'));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn cross_thread_transfer() {
        let (mut tx, mut rx) = MutexQueue::with_capacity(16);
        const N: u32 = 50_000;
        let t = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.try_send(v) {
                        Ok(()) => break,
                        Err(Full(b)) => {
                            v = b;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut seen = 0;
        while seen < N {
            if let Some(v) = rx.try_recv() {
                assert_eq!(v, seen);
                seen += 1;
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn batch_ops_roundtrip() {
        let (mut tx, mut rx) = MutexQueue::with_capacity(4);
        let mut items: Vec<u32> = (0..7).collect();
        assert_eq!(tx.try_send_batch(&mut items), 4);
        assert_eq!(items, vec![4, 5, 6]);
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(tx.try_send_batch(&mut items), 3);
        assert!(items.is_empty());
        assert_eq!(rx.try_recv_batch(&mut out, 100), 4);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(rx.try_recv_batch(&mut out, 1), 0);
    }
}
