//! Lock-based SPSC queue baseline.
//!
//! The paper argues lock-free IPC "is more efficient than the lock-based
//! synchronization, in which only one process can access the queue at one
//! time" (§3.5). This mutex-guarded ring exists so the `ipc_queue` ablation
//! bench can quantify that claim instead of asserting it.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::Full;

struct Inner<T> {
    q: Mutex<VecDeque<T>>,
    capacity: usize,
}

/// Factory type; split into endpoints with [`MutexQueue::with_capacity`].
pub struct MutexQueue<T>(std::marker::PhantomData<T>);

impl<T: Send> MutexQueue<T> {
    pub fn with_capacity(capacity: usize) -> (MutexSender<T>, MutexReceiver<T>) {
        assert!(capacity > 0, "queue capacity must be positive");
        let inner = Arc::new(Inner { q: Mutex::new(VecDeque::with_capacity(capacity)), capacity });
        (MutexSender { inner: Arc::clone(&inner) }, MutexReceiver { inner })
    }
}

/// Producer endpoint.
pub struct MutexSender<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer endpoint.
pub struct MutexReceiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T: Send> MutexSender<T> {
    #[inline]
    pub fn try_send(&mut self, item: T) -> Result<(), Full<T>> {
        let mut q = self.inner.q.lock();
        if q.len() >= self.inner.capacity {
            return Err(Full(item));
        }
        q.push_back(item);
        Ok(())
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.inner.q.lock().len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

impl<T: Send> MutexReceiver<T> {
    #[inline]
    pub fn try_recv(&mut self) -> Option<T> {
        self.inner.q.lock().pop_front()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.inner.q.lock().len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_capacity() {
        let (mut tx, mut rx) = MutexQueue::with_capacity(2);
        tx.try_send('a').unwrap();
        tx.try_send('b').unwrap();
        assert_eq!(tx.try_send('c'), Err(Full('c')));
        assert_eq!(rx.try_recv(), Some('a'));
        assert_eq!(rx.try_recv(), Some('b'));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn cross_thread_transfer() {
        let (mut tx, mut rx) = MutexQueue::with_capacity(16);
        const N: u32 = 50_000;
        let t = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.try_send(v) {
                        Ok(()) => break,
                        Err(Full(b)) => {
                            v = b;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut seen = 0;
        while seen < N {
            if let Some(v) = rx.try_recv() {
                assert_eq!(v, seen);
                seen += 1;
            }
        }
        t.join().unwrap();
    }
}
