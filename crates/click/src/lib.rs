//! A miniature Click modular router — the paper's "Click VR" substrate.
//!
//! The paper's second hosted VR type is "a forwarding program based on Click
//! Modular Router. … the Click VR parses a configuration script to conduct
//! the forwarding function, and internally relays data frames via different
//! modules" (§3.8). We reproduce that architecture in miniature:
//!
//! * a [`config`] parser for the Click configuration language subset the
//!   experiments need (element declarations `name :: Class(args)`, chained
//!   connections `a -> b -> c`, output ports `cl[1] -> d`, comments);
//! * an [`elements`] library with the classic packet-path elements
//!   (`FromDevice`, `ToDevice`, `Counter`, `Discard`, `CheckIPHeader`,
//!   `DecIPTTL`, `Classifier`, `LookupIPRoute`, `Queue`, `Tee`);
//! * a push-mode element [`graph`] that routes each frame through the
//!   configured pipeline;
//! * [`ClickVr`], which wraps a graph behind the
//!   [`lvrm_router::VirtualRouter`] trait so LVRM can host it exactly like
//!   the C++ VR.
//!
//! **Simplifications vs. real Click** (documented per DESIGN.md): the graph
//! runs pure push (Click's pull side and schedulers are not modeled —
//! `Queue` is a counting pass-through marking the push/pull boundary), and
//! `Classifier` matches a small pattern language (`ip proto tcp|udp|icmp`,
//! `-`) rather than arbitrary offset/mask patterns. Neither is exercised by
//! the paper's evaluation, which uses minimal forwarding configs.

pub mod clickvr;
pub mod config;
pub mod elements;
pub mod graph;

pub use clickvr::ClickVr;
pub use config::{parse_config, ConfigError};
pub use graph::{ElementGraph, PacketFate};

/// Default nominal per-frame cost of the Click VR in the testbed's cost
/// model. Click's element indirection makes it markedly heavier than the
/// C++ VR — calibrated against Fig. 4.5's gap between the two.
pub const CLICK_VR_BASE_COST_NS: u64 = 2_400;

/// Additional nominal cost charged per element a frame traverses.
pub const CLICK_PER_ELEMENT_COST_NS: u64 = 150;
