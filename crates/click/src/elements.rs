//! The element library.
//!
//! Each element is a small packet processor with numbered input and output
//! ports, mirroring Click's design (Kohler et al. 2000, the paper's \[21\]).
//! Elements run in push mode: `push` receives a frame on an input port and
//! emits zero or more frames on output ports via the `emit` callback.

use std::net::Ipv4Addr;

use lvrm_net::headers::{internet_checksum, IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP};
use lvrm_net::Frame;

use crate::config::{ConfigError, Decl};

/// Marks elements that terminate a frame's journey through the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// `ToDevice(iface)`: the frame leaves the router on `iface`.
    ToDevice(u16),
    /// `Discard`: the frame is intentionally dropped.
    Discard,
}

/// A packet-processing element.
pub trait Element: Send {
    /// Click class name (`Counter`, `ToDevice`, ...).
    fn class_name(&self) -> &'static str;

    /// Number of output ports.
    fn n_outputs(&self) -> usize {
        1
    }

    /// If this element terminates frames, what happens to them.
    fn terminal(&self) -> Option<Terminal> {
        None
    }

    /// Process a frame arriving on `port`, emitting results through `emit`.
    /// Terminal elements need not emit.
    fn push(&mut self, port: usize, frame: Frame, emit: &mut dyn FnMut(usize, Frame));

    /// Duplicate this element's *configuration* for a new VRI instance
    /// (statistics start fresh).
    fn clone_fresh(&self) -> Box<dyn Element>;

    /// Frames processed so far (elements with counters override).
    fn count(&self) -> u64 {
        0
    }
}

fn cfg_err<T>(msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError(msg.into()))
}

// ---------------------------------------------------------------------------
// FromDevice

/// Entry point: frames arriving on the given interface are injected here.
pub struct FromDevice {
    pub iface: u16,
}

impl Element for FromDevice {
    fn class_name(&self) -> &'static str {
        "FromDevice"
    }
    fn push(&mut self, _port: usize, frame: Frame, emit: &mut dyn FnMut(usize, Frame)) {
        emit(0, frame);
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(FromDevice { iface: self.iface })
    }
}

// ---------------------------------------------------------------------------
// ToDevice

/// Exit point: frames reaching this element leave via `iface`.
pub struct ToDevice {
    pub iface: u16,
    sent: u64,
}

impl Element for ToDevice {
    fn class_name(&self) -> &'static str {
        "ToDevice"
    }
    fn n_outputs(&self) -> usize {
        0
    }
    fn terminal(&self) -> Option<Terminal> {
        Some(Terminal::ToDevice(self.iface))
    }
    fn push(&mut self, _port: usize, _frame: Frame, _emit: &mut dyn FnMut(usize, Frame)) {
        self.sent += 1;
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(ToDevice { iface: self.iface, sent: 0 })
    }
    fn count(&self) -> u64 {
        self.sent
    }
}

// ---------------------------------------------------------------------------
// Discard

/// Swallows every frame.
#[derive(Default)]
pub struct Discard {
    dropped: u64,
}

impl Element for Discard {
    fn class_name(&self) -> &'static str {
        "Discard"
    }
    fn n_outputs(&self) -> usize {
        0
    }
    fn terminal(&self) -> Option<Terminal> {
        Some(Terminal::Discard)
    }
    fn push(&mut self, _port: usize, _frame: Frame, _emit: &mut dyn FnMut(usize, Frame)) {
        self.dropped += 1;
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(Discard::default())
    }
    fn count(&self) -> u64 {
        self.dropped
    }
}

// ---------------------------------------------------------------------------
// Counter

/// Pass-through frame/byte counter.
#[derive(Default)]
pub struct Counter {
    frames: u64,
    bytes: u64,
}

impl Element for Counter {
    fn class_name(&self) -> &'static str {
        "Counter"
    }
    fn push(&mut self, _port: usize, frame: Frame, emit: &mut dyn FnMut(usize, Frame)) {
        self.frames += 1;
        self.bytes += frame.len() as u64;
        emit(0, frame);
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(Counter::default())
    }
    fn count(&self) -> u64 {
        self.frames
    }
}

impl Counter {
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

// ---------------------------------------------------------------------------
// CheckIPHeader

/// Validates IPv4-ness and header checksum. Good frames exit port 0; bad
/// frames exit port 1 when connected, otherwise they are dropped (Click
/// semantics).
#[derive(Default)]
pub struct CheckIPHeader {
    pub bad: u64,
}

impl Element for CheckIPHeader {
    fn class_name(&self) -> &'static str {
        "CheckIPHeader"
    }
    fn n_outputs(&self) -> usize {
        2
    }
    fn push(&mut self, _port: usize, frame: Frame, emit: &mut dyn FnMut(usize, Frame)) {
        let ok = frame.ipv4().map(|ip| ip.checksum_ok()).unwrap_or(false);
        if ok {
            emit(0, frame);
        } else {
            self.bad += 1;
            emit(1, frame);
        }
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(CheckIPHeader::default())
    }
}

// ---------------------------------------------------------------------------
// DecIPTTL

/// Decrements the IPv4 TTL (fixing the checksum incrementally per RFC 1141).
/// Expired frames (TTL would hit 0) exit port 1 when connected, else drop.
#[derive(Default)]
pub struct DecIpTtl {
    pub expired: u64,
}

impl Element for DecIpTtl {
    fn class_name(&self) -> &'static str {
        "DecIPTTL"
    }
    fn n_outputs(&self) -> usize {
        2
    }
    fn push(&mut self, _port: usize, mut frame: Frame, emit: &mut dyn FnMut(usize, Frame)) {
        let ttl = match frame.ipv4() {
            Ok(ip) => ip.ttl(),
            Err(_) => {
                self.expired += 1;
                emit(1, frame);
                return;
            }
        };
        if ttl <= 1 {
            self.expired += 1;
            emit(1, frame);
            return;
        }
        frame.modify_bytes(|b| {
            // Ethernet header is 14 bytes; TTL at IP offset 8, checksum at 10.
            let ttl_at = 14 + 8;
            b[ttl_at] -= 1;
            // RFC 1141 incremental update: new = old + 0x0100 (TTL is the
            // high byte of its 16-bit word), with end-around carry.
            let old = u16::from_be_bytes([b[14 + 10], b[14 + 11]]);
            let (mut new, carry) = old.overflowing_add(0x0100);
            if carry {
                new += 1;
            }
            b[14 + 10..14 + 12].copy_from_slice(&new.to_be_bytes());
        });
        emit(0, frame);
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(DecIpTtl::default())
    }
}

// ---------------------------------------------------------------------------
// Classifier

/// One match rule of the simplified pattern language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pattern {
    Proto(u8),
    Any,
}

/// Sends each frame out the port of its first matching pattern; frames that
/// match nothing are dropped. Patterns: `ip proto tcp|udp|icmp`, `-` (any).
pub struct Classifier {
    patterns: Vec<Pattern>,
}

impl Classifier {
    pub fn from_args(args: &[String]) -> Result<Classifier, ConfigError> {
        if args.is_empty() {
            return cfg_err("Classifier needs at least one pattern");
        }
        let mut patterns = Vec::with_capacity(args.len());
        for a in args {
            let a = a.trim();
            if a == "-" {
                patterns.push(Pattern::Any);
                continue;
            }
            let Some(proto) = a.strip_prefix("ip proto ") else {
                return cfg_err(format!("unsupported Classifier pattern {a:?}"));
            };
            let p = match proto.trim() {
                "tcp" => IPPROTO_TCP,
                "udp" => IPPROTO_UDP,
                "icmp" => IPPROTO_ICMP,
                other => match other.parse::<u8>() {
                    Ok(n) => n,
                    Err(_) => return cfg_err(format!("unknown protocol {other:?}")),
                },
            };
            patterns.push(Pattern::Proto(p));
        }
        Ok(Classifier { patterns })
    }
}

impl Element for Classifier {
    fn class_name(&self) -> &'static str {
        "Classifier"
    }
    fn n_outputs(&self) -> usize {
        self.patterns.len()
    }
    fn push(&mut self, _port: usize, frame: Frame, emit: &mut dyn FnMut(usize, Frame)) {
        let proto = frame.ipv4().map(|ip| ip.protocol()).ok();
        for (i, pat) in self.patterns.iter().enumerate() {
            let hit = match pat {
                Pattern::Any => true,
                Pattern::Proto(p) => proto == Some(*p),
            };
            if hit {
                emit(i, frame);
                return;
            }
        }
        // No match: frame is dropped silently (Click would warn once).
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(Classifier { patterns: self.patterns.clone() })
    }
}

// ---------------------------------------------------------------------------
// LookupIPRoute

/// Routes on destination address: each argument is `prefix/len port`; the
/// frame exits on the port of its longest matching prefix, or is dropped.
pub struct LookupIpRoute {
    routes: lvrm_router::RouteTable,
    n_ports: usize,
    pub misses: u64,
}

impl LookupIpRoute {
    pub fn from_args(args: &[String]) -> Result<LookupIpRoute, ConfigError> {
        if args.is_empty() {
            return cfg_err("LookupIPRoute needs at least one route");
        }
        let mut routes = lvrm_router::RouteTable::new();
        let mut n_ports = 0usize;
        for a in args {
            let mut it = a.split_whitespace();
            let (Some(cidr), Some(port_s), None) = (it.next(), it.next(), it.next()) else {
                return cfg_err(format!("LookupIPRoute route {a:?} must be 'prefix/len port'"));
            };
            let Some((prefix_s, len_s)) = cidr.split_once('/') else {
                return cfg_err(format!("LookupIPRoute destination {cidr:?} is not CIDR"));
            };
            let prefix: Ipv4Addr =
                prefix_s.parse().map_err(|_| ConfigError(format!("bad prefix {prefix_s:?}")))?;
            let len: u8 = len_s
                .parse()
                .ok()
                .filter(|l| *l <= 32)
                .ok_or_else(|| ConfigError(format!("bad prefix length {len_s:?}")))?;
            let port: u16 =
                port_s.parse().map_err(|_| ConfigError(format!("bad port {port_s:?}")))?;
            n_ports = n_ports.max(port as usize + 1);
            routes.insert(lvrm_router::Route { prefix, len, iface: port, next_hop: None });
        }
        Ok(LookupIpRoute { routes, n_ports, misses: 0 })
    }
}

impl Element for LookupIpRoute {
    fn class_name(&self) -> &'static str {
        "LookupIPRoute"
    }
    fn n_outputs(&self) -> usize {
        self.n_ports
    }
    fn push(&mut self, _port: usize, frame: Frame, emit: &mut dyn FnMut(usize, Frame)) {
        let dst = match frame.dst_ip() {
            Ok(d) => d,
            Err(_) => {
                self.misses += 1;
                return;
            }
        };
        match self.routes.lookup(dst) {
            Some(r) => emit(r.iface as usize, frame),
            None => self.misses += 1,
        }
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        // RouteTable is immutable after parse; rebuild by re-inserting.
        let mut routes = lvrm_router::RouteTable::new();
        for r in self.routes.iter() {
            routes.insert(*r);
        }
        Box::new(LookupIpRoute { routes, n_ports: self.n_ports, misses: 0 })
    }
}

// ---------------------------------------------------------------------------
// Queue

/// Push/pull boundary marker. Our graph runs pure push, so `Queue` is a
/// pass-through that tracks a simulated occupancy high-water mark (see the
/// crate docs for this documented simplification).
pub struct ClickQueue {
    pub capacity: usize,
    passed: u64,
}

impl ClickQueue {
    pub fn from_args(args: &[String]) -> Result<ClickQueue, ConfigError> {
        let capacity = match args {
            [] => 1000,
            [cap] => cap.parse().map_err(|_| ConfigError(format!("bad Queue capacity {cap:?}")))?,
            _ => return cfg_err("Queue takes at most one argument"),
        };
        Ok(ClickQueue { capacity, passed: 0 })
    }
}

impl Element for ClickQueue {
    fn class_name(&self) -> &'static str {
        "Queue"
    }
    fn push(&mut self, _port: usize, frame: Frame, emit: &mut dyn FnMut(usize, Frame)) {
        self.passed += 1;
        emit(0, frame);
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(ClickQueue { capacity: self.capacity, passed: 0 })
    }
    fn count(&self) -> u64 {
        self.passed
    }
}

// ---------------------------------------------------------------------------
// Tee

/// Duplicates every frame to all `n` outputs.
pub struct Tee {
    n: usize,
}

impl Tee {
    pub fn from_args(args: &[String]) -> Result<Tee, ConfigError> {
        let n = match args {
            [] => 2,
            [n] => n.parse().map_err(|_| ConfigError(format!("bad Tee width {n:?}")))?,
            _ => return cfg_err("Tee takes at most one argument"),
        };
        if n == 0 {
            return cfg_err("Tee width must be positive");
        }
        Ok(Tee { n })
    }
}

impl Element for Tee {
    fn class_name(&self) -> &'static str {
        "Tee"
    }
    fn n_outputs(&self) -> usize {
        self.n
    }
    fn push(&mut self, _port: usize, frame: Frame, emit: &mut dyn FnMut(usize, Frame)) {
        for i in 0..self.n.saturating_sub(1) {
            emit(i, frame.clone());
        }
        emit(self.n - 1, frame);
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(Tee { n: self.n })
    }
}

// ---------------------------------------------------------------------------
// CheckLength

/// Passes frames of at most `max` captured bytes on port 0; longer frames
/// exit port 1 (or drop when unconnected), like Click's CheckLength.
pub struct CheckLength {
    max: usize,
    pub oversized: u64,
}

impl CheckLength {
    pub fn from_args(args: &[String]) -> Result<CheckLength, ConfigError> {
        match args {
            [m] => Ok(CheckLength {
                max: m.parse().map_err(|_| ConfigError(format!("bad CheckLength max {m:?}")))?,
                oversized: 0,
            }),
            _ => cfg_err("CheckLength takes exactly one maximum-length argument"),
        }
    }
}

impl Element for CheckLength {
    fn class_name(&self) -> &'static str {
        "CheckLength"
    }
    fn n_outputs(&self) -> usize {
        2
    }
    fn push(&mut self, _port: usize, frame: Frame, emit: &mut dyn FnMut(usize, Frame)) {
        if frame.len() <= self.max {
            emit(0, frame);
        } else {
            self.oversized += 1;
            emit(1, frame);
        }
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(CheckLength { max: self.max, oversized: 0 })
    }
}

// ---------------------------------------------------------------------------
// SetIPTTL

/// Rewrites the IPv4 TTL to a fixed value (recomputing the checksum).
/// Non-IP frames pass through untouched.
pub struct SetIpTtl {
    ttl: u8,
}

impl SetIpTtl {
    pub fn from_args(args: &[String]) -> Result<SetIpTtl, ConfigError> {
        match args {
            [t] => Ok(SetIpTtl {
                ttl: t.parse().map_err(|_| ConfigError(format!("bad SetIPTTL value {t:?}")))?,
            }),
            _ => cfg_err("SetIPTTL takes exactly one TTL argument"),
        }
    }
}

impl Element for SetIpTtl {
    fn class_name(&self) -> &'static str {
        "SetIPTTL"
    }
    fn push(&mut self, _port: usize, mut frame: Frame, emit: &mut dyn FnMut(usize, Frame)) {
        if frame.ipv4().is_ok() {
            let ttl = self.ttl;
            frame.modify_bytes(|b| {
                b[14 + 8] = ttl;
                b[14 + 10] = 0;
                b[14 + 11] = 0;
                let csum = internet_checksum(&b[14..14 + 20]);
                b[14 + 10..14 + 12].copy_from_slice(&csum.to_be_bytes());
            });
        }
        emit(0, frame);
    }
    fn clone_fresh(&self) -> Box<dyn Element> {
        Box::new(SetIpTtl { ttl: self.ttl })
    }
}

// ---------------------------------------------------------------------------
// Factory

fn one_u16(decl: &Decl) -> Result<u16, ConfigError> {
    match decl.args.as_slice() {
        [a] => a.parse().map_err(|_| ConfigError(format!("{}: bad interface {a:?}", decl.class))),
        _ => cfg_err(format!("{} takes exactly one interface argument", decl.class)),
    }
}

/// Instantiate an element from its declaration.
pub fn build_element(decl: &Decl) -> Result<Box<dyn Element>, ConfigError> {
    Ok(match decl.class.as_str() {
        "FromDevice" => Box::new(FromDevice { iface: one_u16(decl)? }),
        "ToDevice" => Box::new(ToDevice { iface: one_u16(decl)?, sent: 0 }),
        "Discard" => Box::new(Discard::default()),
        "Counter" => Box::new(Counter::default()),
        "CheckIPHeader" => Box::new(CheckIPHeader::default()),
        "DecIPTTL" => Box::new(DecIpTtl::default()),
        "Classifier" => Box::new(Classifier::from_args(&decl.args)?),
        "LookupIPRoute" => Box::new(LookupIpRoute::from_args(&decl.args)?),
        "Queue" => Box::new(ClickQueue::from_args(&decl.args)?),
        "Tee" => Box::new(Tee::from_args(&decl.args)?),
        "CheckLength" => Box::new(CheckLength::from_args(&decl.args)?),
        "SetIPTTL" => Box::new(SetIpTtl::from_args(&decl.args)?),
        other => return cfg_err(format!("unknown element class {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::FrameBuilder;

    fn udp_frame() -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9))
            .udp(1, 2, &[0u8; 26])
    }

    fn tcp_frame() -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9)).tcp(
            1,
            2,
            0,
            0,
            lvrm_net::headers::tcp_flags::SYN,
            100,
            &[],
        )
    }

    fn collect(el: &mut dyn Element, frame: Frame) -> Vec<(usize, Frame)> {
        let mut out = Vec::new();
        el.push(0, frame, &mut |p, f| out.push((p, f)));
        out
    }

    #[test]
    fn counter_counts_and_passes() {
        let mut c = Counter::default();
        let out = collect(&mut c, udp_frame());
        assert_eq!(out.len(), 1);
        assert_eq!(c.count(), 1);
        assert!(c.bytes() > 0);
    }

    #[test]
    fn check_ip_header_splits_good_and_bad() {
        let mut c = CheckIPHeader::default();
        assert_eq!(collect(&mut c, udp_frame())[0].0, 0);
        // Corrupt the checksum.
        let mut bad = udp_frame();
        bad.modify_bytes(|b| b[14 + 10] ^= 0xff);
        assert_eq!(collect(&mut c, bad)[0].0, 1);
        assert_eq!(c.bad, 1);
    }

    #[test]
    fn dec_ip_ttl_decrements_and_fixes_checksum() {
        let mut d = DecIpTtl::default();
        let f = udp_frame();
        let ttl_before = f.ipv4().unwrap().ttl();
        let out = collect(&mut d, f);
        let (port, f2) = &out[0];
        assert_eq!(*port, 0);
        let ip = f2.ipv4().unwrap();
        assert_eq!(ip.ttl(), ttl_before - 1);
        assert!(ip.checksum_ok(), "incremental checksum update must stay valid");
    }

    #[test]
    fn dec_ip_ttl_expires_ttl_one() {
        let mut d = DecIpTtl::default();
        let f = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9))
            .ttl(1)
            .udp(1, 2, &[]);
        let out = collect(&mut d, f);
        assert_eq!(out[0].0, 1);
        assert_eq!(d.expired, 1);
    }

    #[test]
    fn classifier_matches_first_pattern() {
        let args = vec!["ip proto tcp".into(), "ip proto udp".into(), "-".into()];
        let mut cl = Classifier::from_args(&args).unwrap();
        assert_eq!(collect(&mut cl, tcp_frame())[0].0, 0);
        assert_eq!(collect(&mut cl, udp_frame())[0].0, 1);
    }

    #[test]
    fn classifier_rejects_garbage_patterns() {
        assert!(Classifier::from_args(&["tcp port 80".into()]).is_err());
        assert!(Classifier::from_args(&[]).is_err());
    }

    #[test]
    fn lookup_ip_route_lpm_to_ports() {
        let args = vec!["10.0.2.0/24 1".into(), "0.0.0.0/0 0".into()];
        let mut rt = LookupIpRoute::from_args(&args).unwrap();
        assert_eq!(rt.n_outputs(), 2);
        assert_eq!(collect(&mut rt, udp_frame())[0].0, 1);
    }

    #[test]
    fn tee_duplicates_to_all_ports() {
        let mut t = Tee::from_args(&["3".into()]).unwrap();
        let out = collect(&mut t, udp_frame());
        assert_eq!(out.iter().map(|(p, _)| *p).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn check_length_splits_by_size() {
        let mut cl = CheckLength::from_args(&["100".into()]).unwrap();
        let small = udp_frame();
        assert_eq!(collect(&mut cl, small)[0].0, 0);
        let big = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9)).udp(
            1,
            2,
            &[0u8; 200],
        );
        assert_eq!(collect(&mut cl, big)[0].0, 1);
        assert_eq!(cl.oversized, 1);
    }

    #[test]
    fn set_ip_ttl_rewrites_and_fixes_checksum() {
        let mut el = SetIpTtl::from_args(&["9".into()]).unwrap();
        let out = collect(&mut el, udp_frame());
        let ip = out[0].1.ipv4().unwrap();
        assert_eq!(ip.ttl(), 9);
        assert!(ip.checksum_ok());
    }

    #[test]
    fn set_ip_ttl_passes_non_ip_untouched() {
        let mut el = SetIpTtl::from_args(&["9".into()]).unwrap();
        let mut raw = vec![0u8; 60];
        raw[12] = 0x08;
        raw[13] = 0x06; // ARP
        let f = Frame::new(bytes::Bytes::from(raw.clone()));
        let out = collect(&mut el, f);
        assert_eq!(out[0].1.bytes(), &raw[..]);
    }

    #[test]
    fn factory_rejects_unknown_class() {
        let d = Decl { name: "x".into(), class: "Teleport".into(), args: vec![] };
        assert!(build_element(&d).is_err());
    }

    #[test]
    fn factory_enforces_arity() {
        let d = Decl { name: "x".into(), class: "ToDevice".into(), args: vec![] };
        assert!(build_element(&d).is_err());
    }
}
