//! `ClickVr` — hosting a Click pipeline behind the [`VirtualRouter`] trait.

use lvrm_net::Frame;
use lvrm_router::{RouterAction, VirtualRouter};

use crate::config::parse_config;
use crate::graph::{ElementGraph, PacketFate};
use crate::{ConfigError, CLICK_PER_ELEMENT_COST_NS, CLICK_VR_BASE_COST_NS};

/// The paper's *Click VR*: a configuration-script-driven modular router.
pub struct ClickVr {
    name: String,
    /// Kept so `spawn_instance` can hand each VRI a fresh graph.
    config_text: String,
    graph: ElementGraph,
    dummy_load_ns: u64,
    nominal_cost_ns: u64,
    /// Frames dropped by the pipeline.
    pub dropped: u64,
}

impl ClickVr {
    /// Parse `config_text` and compile the element graph.
    pub fn from_config(name: impl Into<String>, config_text: &str) -> Result<ClickVr, ConfigError> {
        let ast = parse_config(config_text)?;
        let graph = ElementGraph::compile(&ast)?;
        let nominal_cost_ns =
            CLICK_VR_BASE_COST_NS + CLICK_PER_ELEMENT_COST_NS * graph.len() as u64;
        Ok(ClickVr {
            name: name.into(),
            config_text: config_text.to_string(),
            graph,
            dummy_load_ns: 0,
            nominal_cost_ns,
            dropped: 0,
        })
    }

    /// The default minimal-forwarding config the experiments use: relay
    /// every frame from `in_if` to `out_if` (paper §3.8: "both types of VRs
    /// perform the minimal data forwarding function").
    pub fn minimal_forwarding(
        name: impl Into<String>,
        in_if: u16,
        out_if: u16,
    ) -> Result<ClickVr, ConfigError> {
        let cfg = format!("FromDevice({in_if}) -> Counter -> ToDevice({out_if});");
        ClickVr::from_config(name, &cfg)
    }

    /// Add the synthetic per-frame load used by Chapter 4.
    pub fn with_dummy_load_ns(mut self, ns: u64) -> ClickVr {
        self.dummy_load_ns = ns;
        self
    }

    /// Access the compiled graph (statistics, entry points).
    pub fn graph(&self) -> &ElementGraph {
        &self.graph
    }
}

impl VirtualRouter for ClickVr {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, frame: &mut Frame) -> RouterAction {
        // The graph consumes the frame; run on a clone of the shared bytes
        // (cheap) and copy the egress decision back.
        let fate = self.graph.run(frame.clone());
        match fate {
            PacketFate::Forwarded { iface } => {
                frame.egress_if = iface;
                RouterAction::Forward { iface }
            }
            PacketFate::Dropped => {
                self.dropped += 1;
                RouterAction::Drop
            }
        }
    }

    fn dummy_load_ns(&self) -> u64 {
        self.dummy_load_ns
    }

    fn nominal_cost_ns(&self) -> u64 {
        self.nominal_cost_ns
    }

    fn spawn_instance(&self) -> Box<dyn VirtualRouter> {
        Box::new(ClickVr {
            name: self.name.clone(),
            config_text: self.config_text.clone(),
            graph: self.graph.clone_fresh(),
            dummy_load_ns: self.dummy_load_ns,
            nominal_cost_ns: self.nominal_cost_ns,
            dropped: 0,
        })
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn frame() -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9))
            .udp(1, 2, &[0u8; 26])
    }

    #[test]
    fn minimal_forwarding_relays() {
        let mut vr = ClickVr::minimal_forwarding("click", 0, 1).unwrap();
        let mut f = frame();
        assert_eq!(vr.process(&mut f), RouterAction::Forward { iface: 1 });
        assert_eq!(f.egress_if, 1);
    }

    #[test]
    fn click_is_heavier_than_cpp() {
        let vr = ClickVr::minimal_forwarding("click", 0, 1).unwrap();
        assert!(vr.nominal_cost_ns() > lvrm_router::fastvr::CPP_VR_COST_NS);
    }

    #[test]
    fn routed_config_drops_unroutable() {
        let mut vr = ClickVr::from_config(
            "click",
            "FromDevice(0) -> rt :: LookupIPRoute(10.0.9.0/24 0); rt[0] -> ToDevice(1);",
        )
        .unwrap();
        let mut f = frame();
        assert_eq!(vr.process(&mut f), RouterAction::Drop);
        assert_eq!(vr.dropped, 1);
    }

    #[test]
    fn spawn_instance_has_fresh_statistics() {
        let mut vr = ClickVr::minimal_forwarding("click", 0, 1).unwrap();
        let mut f = frame();
        vr.process(&mut f);
        assert_eq!(vr.graph().traversals(), 3);
        let inst = vr.spawn_instance();
        assert_eq!(inst.name(), "click");
        assert_eq!(inst.nominal_cost_ns(), vr.nominal_cost_ns());
    }

    #[test]
    fn bad_config_is_reported() {
        assert!(ClickVr::from_config("x", "Frob(1) -> ToDevice(0);").is_err());
        assert!(ClickVr::from_config("x", "").is_err());
    }
}
