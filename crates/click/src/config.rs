//! Parser for the Click configuration language subset.
//!
//! Supported grammar (a faithful subset of Click's):
//!
//! ```text
//! config     := statement (';' statement)* ';'?
//! statement  := chain
//! chain      := endpoint ('->' endpoint)*
//! endpoint   := ['[' PORT ']'] core ['[' PORT ']']
//! core       := NAME '::' CLASS args?      // named declaration (inline ok)
//!             | CLASS args?                // anonymous declaration
//!             | NAME                       // reference to earlier decl
//! args       := '(' raw-text-with-balanced-parens ')'
//! ```
//!
//! Comments: `//` to end of line and `/* ... */`. Argument text is split on
//! top-level commas and passed to the element constructors verbatim, so
//! patterns like `Classifier(ip proto tcp, -)` work. A leading `[n]` binds
//! the *input* port of the endpoint; a trailing `[n]` binds its *output*
//! port, as in Click (`a [1] -> [0] b`).

use std::collections::HashMap;
use std::fmt;

/// A parsed element declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decl {
    /// Instance name (auto-generated `__anon<N>` for anonymous elements).
    pub name: String,
    /// Element class, e.g. `FromDevice`.
    pub class: String,
    /// Raw argument strings, split on top-level commas and trimmed.
    pub args: Vec<String>,
}

/// A parsed connection `from[out_port] -> [in_port]to`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Link {
    pub from: String,
    pub out_port: usize,
    pub to: String,
    pub in_port: usize,
}

/// Parse result: declarations in order plus the connection list.
#[derive(Clone, Debug, Default)]
pub struct ConfigAst {
    pub decls: Vec<Decl>,
    pub links: Vec<Link>,
}

/// Configuration parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "click config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError(msg.into()))
}

/// Strip `//` and `/* */` comments.
fn strip_comments(text: &str) -> Result<String, ConfigError> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' {
            match chars.peek() {
                Some('/') => {
                    for c2 in chars.by_ref() {
                        if c2 == '\n' {
                            out.push('\n');
                            break;
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    let mut closed = false;
                    while let Some(c2) = chars.next() {
                        if c2 == '*' && chars.peek() == Some(&'/') {
                            chars.next();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return err("unterminated /* comment");
                    }
                    out.push(' ');
                }
                _ => out.push(c),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Split on `sep` at paren/bracket depth zero.
fn split_top_level(text: &str, sep: char) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '(' | '[' => {
                depth += 1;
                cur.push(c);
            }
            ')' | ']' => {
                depth -= 1;
                cur.push(c);
            }
            c if c == sep && depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

/// Split a chain on `->` at top level.
fn split_arrows(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '-' if depth == 0 && i + 1 < bytes.len() && bytes[i + 1] == '>' => {
                parts.push(std::mem::take(&mut cur));
                i += 2;
                continue;
            }
            _ => {}
        }
        cur.push(c);
        i += 1;
    }
    parts.push(cur);
    parts
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().unwrap().is_ascii_alphabetic()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One endpoint after port extraction.
struct Endpoint {
    name: String,
    in_port: usize,
    out_port: usize,
}

struct Parser {
    ast: ConfigAst,
    known: HashMap<String, usize>,
    anon_counter: usize,
}

impl Parser {
    fn declare(
        &mut self,
        name: String,
        class: String,
        args: Vec<String>,
    ) -> Result<(), ConfigError> {
        if self.known.contains_key(&name) {
            return err(format!("element {name:?} declared twice"));
        }
        self.known.insert(name.clone(), self.ast.decls.len());
        self.ast.decls.push(Decl { name, class, args });
        Ok(())
    }

    /// Parse an endpoint: `[in] core [out]` where core is a decl or reference.
    fn parse_endpoint(&mut self, raw: &str) -> Result<Endpoint, ConfigError> {
        let mut s = raw.trim();
        let mut in_port = 0usize;
        let mut out_port = 0usize;
        // Leading [n] = input port.
        if let Some(rest) = s.strip_prefix('[') {
            let close = rest
                .find(']')
                .ok_or_else(|| ConfigError(format!("unclosed input port in {raw:?}")))?;
            in_port = rest[..close]
                .trim()
                .parse()
                .map_err(|_| ConfigError(format!("bad input port in {raw:?}")))?;
            s = rest[close + 1..].trim_start();
        }
        // Trailing [n] = output port (only when it is not part of args).
        if s.ends_with(']') {
            if let Some(open) = s.rfind('[') {
                let inner = &s[open + 1..s.len() - 1];
                out_port = inner
                    .trim()
                    .parse()
                    .map_err(|_| ConfigError(format!("bad output port in {raw:?}")))?;
                s = s[..open].trim_end();
            }
        }
        let s = s.trim();
        if s.is_empty() {
            return err(format!("empty endpoint in {raw:?}"));
        }

        // Inline named declaration: NAME :: CLASS(args)
        if let Some((name_part, class_part)) = s.split_once("::") {
            let name = name_part.trim().to_string();
            if !is_ident(&name) {
                return err(format!("bad element name {name:?}"));
            }
            let (class, args) = parse_class_args(class_part.trim())?;
            self.declare(name.clone(), class, args)?;
            return Ok(Endpoint { name, in_port, out_port });
        }

        // Plain reference to an existing element.
        if is_ident(s) && self.known.contains_key(s) {
            return Ok(Endpoint { name: s.to_string(), in_port, out_port });
        }

        // Anonymous declaration: CLASS or CLASS(args). Classes start uppercase.
        let (class, args) = parse_class_args(s)?;
        if !class.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            return err(format!("unknown element {class:?} (references must be declared first)"));
        }
        let name = format!("__anon{}", self.anon_counter);
        self.anon_counter += 1;
        self.declare(name.clone(), class, args)?;
        Ok(Endpoint { name, in_port, out_port })
    }

    fn parse_statement(&mut self, stmt: &str) -> Result<(), ConfigError> {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            return Ok(());
        }
        let segments = split_arrows(stmt);
        let mut prev: Option<Endpoint> = None;
        for seg in &segments {
            let ep = self.parse_endpoint(seg)?;
            if let Some(p) = prev {
                self.ast.links.push(Link {
                    from: p.name,
                    out_port: p.out_port,
                    to: ep.name.clone(),
                    in_port: ep.in_port,
                });
            }
            prev = Some(ep);
        }
        Ok(())
    }
}

/// Parse `CLASS` or `CLASS(arg, arg)` into (class, args).
fn parse_class_args(s: &str) -> Result<(String, Vec<String>), ConfigError> {
    if let Some(open) = s.find('(') {
        if !s.ends_with(')') {
            return err(format!("unbalanced parentheses in {s:?}"));
        }
        let class = s[..open].trim().to_string();
        if !is_ident(&class) {
            return err(format!("bad element class {class:?}"));
        }
        let inner = &s[open + 1..s.len() - 1];
        let args = if inner.trim().is_empty() {
            Vec::new()
        } else {
            split_top_level(inner, ',').into_iter().map(|a| a.trim().to_string()).collect()
        };
        Ok((class, args))
    } else {
        if !is_ident(s) {
            return err(format!("bad element class {s:?}"));
        }
        Ok((s.to_string(), Vec::new()))
    }
}

/// Parse Click configuration text into an AST.
pub fn parse_config(text: &str) -> Result<ConfigAst, ConfigError> {
    let clean = strip_comments(text)?;
    let mut p = Parser { ast: ConfigAst::default(), known: HashMap::new(), anon_counter: 0 };
    for stmt in split_top_level(&clean, ';') {
        p.parse_statement(&stmt)?;
    }
    if p.ast.decls.is_empty() {
        return err("configuration declares no elements");
    }
    Ok(p.ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_forwarding_chain() {
        let ast = parse_config("FromDevice(0) -> ToDevice(1);").unwrap();
        assert_eq!(ast.decls.len(), 2);
        assert_eq!(ast.decls[0].class, "FromDevice");
        assert_eq!(ast.decls[0].args, vec!["0"]);
        assert_eq!(ast.links.len(), 1);
        assert_eq!(ast.links[0].from, "__anon0");
        assert_eq!(ast.links[0].to, "__anon1");
    }

    #[test]
    fn named_declarations_and_references() {
        let ast = parse_config("in :: FromDevice(0);\nout :: ToDevice(1);\nin -> Counter -> out;")
            .unwrap();
        assert_eq!(ast.decls.len(), 3);
        assert_eq!(ast.links.len(), 2);
        assert_eq!(ast.links[0].from, "in");
        assert_eq!(ast.links[1].to, "out");
    }

    #[test]
    fn ports_parse_on_both_sides() {
        let ast = parse_config(
            "cl :: Classifier(ip proto tcp, -); a :: Counter; b :: Counter;\n\
             cl[0] -> a; cl[1] -> [0]b;",
        )
        .unwrap();
        let l0 = &ast.links[0];
        assert_eq!((l0.from.as_str(), l0.out_port, l0.to.as_str(), l0.in_port), ("cl", 0, "a", 0));
        let l1 = &ast.links[1];
        assert_eq!((l1.from.as_str(), l1.out_port), ("cl", 1));
    }

    #[test]
    fn args_with_commas_and_spaces() {
        let ast = parse_config("cl :: Classifier(ip proto tcp, ip proto udp, -);").unwrap();
        assert_eq!(ast.decls[0].args, vec!["ip proto tcp", "ip proto udp", "-"]);
    }

    #[test]
    fn comments_are_stripped() {
        let ast =
            parse_config("// entry\nFromDevice(0) /* nic 0 */ -> ToDevice(1); // done").unwrap();
        assert_eq!(ast.decls.len(), 2);
    }

    #[test]
    fn inline_declaration_in_chain() {
        let ast = parse_config("src :: FromDevice(0) -> sink :: Discard;").unwrap();
        assert_eq!(ast.decls.len(), 2);
        assert_eq!(ast.decls[1].name, "sink");
        assert_eq!(ast.links[0].to, "sink");
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let e = parse_config("a :: Counter; a :: Counter;").unwrap_err();
        assert!(e.0.contains("twice"));
    }

    #[test]
    fn undeclared_lowercase_reference_rejected() {
        let e = parse_config("a :: Counter; a -> b;").unwrap_err();
        assert!(e.0.contains("unknown element"));
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(parse_config("a :: Counter; /* oops").is_err());
    }

    #[test]
    fn empty_config_rejected() {
        assert!(parse_config("  // nothing\n").is_err());
    }

    #[test]
    fn lookup_route_args_keep_slashes() {
        let ast = parse_config("rt :: LookupIPRoute(10.0.2.0/24 0, 0.0.0.0/0 1);").unwrap();
        assert_eq!(ast.decls[0].args, vec!["10.0.2.0/24 0", "0.0.0.0/0 1"]);
    }
}
