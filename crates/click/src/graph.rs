//! The element graph: wiring plus push-mode execution.

use std::collections::HashMap;

use lvrm_net::Frame;

use crate::config::{ConfigAst, ConfigError};
use crate::elements::{build_element, Element, Terminal};

/// Out-edges of one element: `out_port -> (target_element, in_port)`.
type OutEdges = Box<[Option<(usize, usize)>]>;

/// What ultimately happened to a frame injected into the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketFate {
    /// Reached a `ToDevice(iface)`.
    Forwarded { iface: u16 },
    /// Dropped (Discard, classifier miss, route miss, unconnected port...).
    Dropped,
}

/// A compiled Click configuration.
pub struct ElementGraph {
    elements: Vec<Box<dyn Element>>,
    names: Vec<String>,
    /// `edges[e][out_port] = Some((target_element, in_port))`.
    edges: Vec<OutEdges>,
    /// `FromDevice` elements by interface, the graph's entry points.
    entries: HashMap<u16, usize>,
    /// Total element traversals (for cost accounting / statistics).
    traversals: u64,
}

impl ElementGraph {
    /// Compile an AST into an executable graph.
    pub fn compile(ast: &ConfigAst) -> Result<ElementGraph, ConfigError> {
        let mut elements = Vec::with_capacity(ast.decls.len());
        let mut names = Vec::with_capacity(ast.decls.len());
        let mut index = HashMap::new();
        let mut entries = HashMap::new();
        for (i, decl) in ast.decls.iter().enumerate() {
            let el = build_element(decl)?;
            if decl.class == "FromDevice" {
                let iface: u16 = decl.args[0]
                    .parse()
                    .map_err(|_| ConfigError(format!("bad FromDevice iface {:?}", decl.args[0])))?;
                if entries.insert(iface, i).is_some() {
                    return Err(ConfigError(format!(
                        "two FromDevice elements claim interface {iface}"
                    )));
                }
            }
            index.insert(decl.name.clone(), i);
            names.push(decl.name.clone());
            elements.push(el);
        }
        if entries.is_empty() {
            return Err(ConfigError("configuration has no FromDevice entry point".into()));
        }

        let mut edges: Vec<OutEdges> =
            elements.iter().map(|e| vec![None; e.n_outputs()].into_boxed_slice()).collect();
        for link in &ast.links {
            let from = *index
                .get(&link.from)
                .ok_or_else(|| ConfigError(format!("unknown element {:?}", link.from)))?;
            let to = *index
                .get(&link.to)
                .ok_or_else(|| ConfigError(format!("unknown element {:?}", link.to)))?;
            let n_out = elements[from].n_outputs();
            if link.out_port >= n_out {
                return Err(ConfigError(format!(
                    "{} has {} output port(s); port {} connected",
                    link.from, n_out, link.out_port
                )));
            }
            if link.in_port != 0 {
                return Err(ConfigError(format!(
                    "{}: only input port 0 is supported (got {})",
                    link.to, link.in_port
                )));
            }
            if edges[from][link.out_port].is_some() {
                return Err(ConfigError(format!(
                    "{}[{}] connected twice",
                    link.from, link.out_port
                )));
            }
            edges[from][link.out_port] = Some((to, link.in_port));
        }
        Ok(ElementGraph { elements, names, edges, entries, traversals: 0 })
    }

    /// Interfaces with a `FromDevice` entry point.
    pub fn entry_ifaces(&self) -> impl Iterator<Item = u16> + '_ {
        self.entries.keys().copied()
    }

    /// Number of elements in the graph.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Total element traversals executed so far.
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Look up an element's processed count by name (for tests/examples).
    pub fn element_count(&self, name: &str) -> Option<u64> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(self.elements[i].count())
    }

    /// Inject `frame` at the `FromDevice` for its ingress interface (or the
    /// sole entry point if that interface has none) and run the pipeline to
    /// quiescence. Returns the frame's fate; when forwarded, `egress_if` has
    /// been stamped on the frame by the time the fate is determined.
    pub fn run(&mut self, frame: Frame) -> PacketFate {
        let entry = self
            .entries
            .get(&frame.ingress_if)
            .or_else(|| self.entries.values().next())
            .copied()
            .expect("compile() guarantees an entry point");
        // Work list of (element, in_port, frame). Depth-first order like
        // Click's push path; Tee fan-out queues siblings.
        let mut work: Vec<(usize, usize, Frame)> = vec![(entry, 0, frame)];
        let mut fate = PacketFate::Dropped;
        let mut emitted: Vec<(usize, Frame)> = Vec::new();
        while let Some((idx, port, f)) = work.pop() {
            self.traversals += 1;
            if let Some(t) = self.elements[idx].terminal() {
                // Run the terminal for its statistics, then record the fate.
                self.elements[idx].push(port, f, &mut |_, _| {});
                match t {
                    Terminal::ToDevice(iface) => {
                        if fate == PacketFate::Dropped {
                            fate = PacketFate::Forwarded { iface };
                        }
                    }
                    Terminal::Discard => {}
                }
                continue;
            }
            emitted.clear();
            self.elements[idx].push(port, f, &mut |out_port, out_frame| {
                emitted.push((out_port, out_frame));
            });
            for (out_port, mut out_frame) in emitted.drain(..) {
                match self.edges[idx].get(out_port).copied().flatten() {
                    Some((next, in_port)) => {
                        // Stamp egress early so ToDevice sees it.
                        if let Some(Terminal::ToDevice(iface)) = self.elements[next].terminal() {
                            out_frame.egress_if = iface;
                        }
                        work.push((next, in_port, out_frame));
                    }
                    None => {
                        // Unconnected port: frame dropped (Click warns once).
                    }
                }
            }
        }
        fate
    }

    /// Export the pipeline as Graphviz DOT (for documentation and
    /// debugging: `dot -Tsvg` renders the element topology).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph click {\n  rankdir=LR;\n  node [shape=box];\n");
        for (i, name) in self.names.iter().enumerate() {
            let _ = writeln!(out, "  n{i} [label=\"{name}\\n{}\"];", self.elements[i].class_name());
        }
        for (i, outs) in self.edges.iter().enumerate() {
            for (port, edge) in outs.iter().enumerate() {
                if let Some((to, _)) = edge {
                    let _ = writeln!(out, "  n{i} -> n{to} [label=\"{port}\"];");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Clone the graph's configuration with fresh statistics (for a new VRI
    /// of the same VR).
    pub fn clone_fresh(&self) -> ElementGraph {
        ElementGraph {
            elements: self.elements.iter().map(|e| e.clone_fresh()).collect(),
            names: self.names.clone(),
            edges: self.edges.clone(),
            entries: self.entries.clone(),
            traversals: 0,
        }
    }
}

impl std::fmt::Debug for ElementGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElementGraph")
            .field("elements", &self.names)
            .field("traversals", &self.traversals)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::parse_config;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn compile(cfg: &str) -> ElementGraph {
        ElementGraph::compile(&parse_config(cfg).unwrap()).unwrap()
    }

    fn udp(src: [u8; 4], dst: [u8; 4]) -> Frame {
        FrameBuilder::new(Ipv4Addr::from(src), Ipv4Addr::from(dst)).udp(1, 2, &[0u8; 26])
    }

    #[test]
    fn minimal_forwarding_pipeline() {
        let mut g = compile("FromDevice(0) -> ToDevice(1);");
        let f = udp([10, 0, 1, 5], [10, 0, 2, 9]);
        assert_eq!(g.run(f), PacketFate::Forwarded { iface: 1 });
    }

    #[test]
    fn frame_gets_egress_stamped() {
        let mut g = compile("FromDevice(0) -> cnt :: Counter -> ToDevice(3);");
        let mut f = udp([10, 0, 1, 5], [10, 0, 2, 9]);
        f.ingress_if = 0;
        assert_eq!(g.run(f), PacketFate::Forwarded { iface: 3 });
        assert_eq!(g.element_count("cnt"), Some(1));
    }

    #[test]
    fn routed_pipeline_uses_lpm_ports() {
        let mut g = compile(
            "FromDevice(0) -> CheckIPHeader \
             -> rt :: LookupIPRoute(10.0.2.0/24 0, 10.0.3.0/24 1);\n\
             rt[0] -> ToDevice(1); rt[1] -> ToDevice(2);",
        );
        assert_eq!(g.run(udp([10, 0, 1, 5], [10, 0, 2, 9])), PacketFate::Forwarded { iface: 1 });
        assert_eq!(g.run(udp([10, 0, 1, 5], [10, 0, 3, 9])), PacketFate::Forwarded { iface: 2 });
        assert_eq!(g.run(udp([10, 0, 1, 5], [8, 8, 8, 8])), PacketFate::Dropped);
    }

    #[test]
    fn discard_branch_counts() {
        let mut g = compile(
            "cl :: Classifier(ip proto udp, -);\n\
             FromDevice(0) -> cl; cl[0] -> ToDevice(1); cl[1] -> sink :: Discard;",
        );
        assert_eq!(g.run(udp([10, 0, 1, 5], [10, 0, 2, 9])), PacketFate::Forwarded { iface: 1 });
        let tcp = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9)).tcp(
            1,
            2,
            0,
            0,
            0x02,
            100,
            &[],
        );
        assert_eq!(g.run(tcp), PacketFate::Dropped);
        assert_eq!(g.element_count("sink"), Some(1));
    }

    #[test]
    fn unconnected_output_drops() {
        let mut g = compile("FromDevice(0) -> Counter;");
        assert_eq!(g.run(udp([10, 0, 1, 5], [10, 0, 2, 9])), PacketFate::Dropped);
    }

    #[test]
    fn multi_entry_selects_by_ingress() {
        let mut g = compile("FromDevice(0) -> ToDevice(1); FromDevice(1) -> ToDevice(0);");
        let mut f = udp([10, 0, 1, 5], [10, 0, 2, 9]);
        f.ingress_if = 1;
        assert_eq!(g.run(f), PacketFate::Forwarded { iface: 0 });
    }

    #[test]
    fn compile_rejects_port_overflow() {
        let e = ElementGraph::compile(
            &parse_config("c :: Counter; c[1] -> Discard; FromDevice(0) -> c;").unwrap(),
        )
        .unwrap_err();
        assert!(e.0.contains("output port"));
    }

    #[test]
    fn compile_rejects_double_connection() {
        let e = ElementGraph::compile(
            &parse_config(
                "FromDevice(0) -> ToDevice(1); xtra :: Counter;", // placeholder
            )
            .map(|mut ast| {
                // Manually duplicate a link to simulate `a -> b; a -> c;`.
                let l = ast.links[0].clone();
                ast.links.push(l);
                ast
            })
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.0.contains("connected twice"));
    }

    #[test]
    fn compile_requires_entry_point() {
        let e = ElementGraph::compile(&parse_config("Counter -> Discard;").unwrap()).unwrap_err();
        assert!(e.0.contains("FromDevice"));
    }

    #[test]
    fn clone_fresh_resets_statistics() {
        let mut g = compile("FromDevice(0) -> c :: Counter -> ToDevice(1);");
        g.run(udp([10, 0, 1, 5], [10, 0, 2, 9]));
        assert_eq!(g.element_count("c"), Some(1));
        let g2 = g.clone_fresh();
        assert_eq!(g2.element_count("c"), Some(0));
        assert_eq!(g2.len(), g.len());
    }

    #[test]
    fn dot_export_names_every_element_and_edge() {
        let g = compile(
            "in :: FromDevice(0); cl :: Classifier(ip proto udp, -);\n\
             in -> cl; cl[0] -> ToDevice(1); cl[1] -> Discard;",
        );
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph click {"));
        assert!(dot.contains("FromDevice"));
        assert!(dot.contains("Classifier"));
        assert!(dot.contains("label=\"1\""), "port labels present: {dot}");
        assert_eq!(dot.matches(" -> ").count(), 3);
    }

    #[test]
    fn tee_forwards_first_todevice_fate() {
        let mut g =
            compile("FromDevice(0) -> t :: Tee(2); t[0] -> ToDevice(1); t[1] -> ToDevice(2);");
        // Both copies are forwarded; the fate reports one interface, and both
        // ToDevice counters tick.
        let fate = g.run(udp([10, 0, 1, 5], [10, 0, 2, 9]));
        assert!(matches!(fate, PacketFate::Forwarded { .. }));
    }
}
