//! # LVRM — a load-aware virtual router monitor in user space
//!
//! A Rust reproduction of Choi & Lee, *"An Extensible Design of a
//! Load-Aware Virtual Router Monitor in User Space"* (SRMPDS/ICPP 2011; full
//! version: CUHK MPhil thesis, 2011).
//!
//! LVRM hosts multiple **virtual routers (VRs)** on one multi-core machine.
//! For each VR it spawns one or more **VR instances (VRIs)** — workers each
//! bound to a dedicated CPU core — and dispatches raw Ethernet frames to
//! them over lock-free shared-memory queues. Its headline feature is
//! **load-aware core allocation**: the number of cores a VR owns follows
//! its measured traffic load.
//!
//! The workspace splits into focused crates, all re-exported here:
//!
//! * [`net`] — frames, headers, flows, wire-time arithmetic;
//! * [`ipc`] — lock-free SPSC queues (Lamport, FastForward-style, mutex
//!   baseline) and the per-VRI data/control channel bundles;
//! * [`metrics`] — EWMA estimators, fairness indexes, latency histograms;
//! * [`router`] — LPM route tables, map files, the `FastVr` ("C++ VR");
//! * [`click`] — a miniature Click modular router (the "Click VR");
//! * [`core`] — the LVRM monitor itself: socket adapters, core allocation,
//!   load balancing, load estimation, the monitor hierarchy;
//! * [`testbed`] — a deterministic discrete-event simulation of the paper's
//!   experimental testbed (links, TCP, baselines, simulated cores);
//! * [`runtime`] — the real threaded runtime with core pinning.
//!
//! ## Quickstart
//!
//! ```
//! use lvrm::prelude::*;
//! use std::net::Ipv4Addr;
//!
//! // A monitor on an 8-core gateway, LVRM pinned to core 0.
//! let clock = MonotonicClock::new();
//! let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
//! let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock.clone());
//!
//! // Host one VR for subnet 10.0.1.0/24 with a static route table.
//! let routes = lvrm::router::parse_map_file("0.0.0.0/0 1\n").unwrap();
//! let mut host = lvrm::core::host::RecordingHost::default();
//! let vr = lvrm.add_vr(
//!     "dept-a",
//!     &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
//!     Box::new(FastVr::new("dept-a", routes)),
//!     &mut host,
//! );
//!
//! // Push a frame through: classify -> balance -> VRI -> egress.
//! let frame = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9))
//!     .udp(5000, 6000, b"payload");
//! lvrm.ingress(frame, &mut host);
//! host.pump();
//! let mut out = Vec::new();
//! lvrm.poll_egress(&mut out);
//! assert_eq!(out.len(), 1);
//! assert_eq!(out[0].egress_if, 1);
//! assert_eq!(lvrm.vri_count(vr), 1);
//! ```

pub use lvrm_click as click;
pub use lvrm_core as core;
pub use lvrm_ipc as ipc;
pub use lvrm_metrics as metrics;
pub use lvrm_net as net;
pub use lvrm_router as router;
pub use lvrm_runtime as runtime;
pub use lvrm_testbed as testbed;

/// The most commonly used items in one import.
pub mod prelude {
    pub use lvrm_core::{
        AdapterError, AffinityMode, AllocatorKind, BalancerKind, Clock, CoreId, CoreMap,
        CoreTopology, DispatchMode, EstimatorKind, Lvrm, LvrmConfig, LvrmStats, ManualClock,
        MonotonicClock, SocketAdapter, SocketKind, VrId, VriId,
    };
    pub use lvrm_ipc::QueueKind;
    pub use lvrm_net::{FlowKey, Frame, FrameBuilder, Trace, TraceSpec};
    pub use lvrm_router::{FastVr, RouteTable, VirtualRouter};
}
