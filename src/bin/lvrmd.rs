//! `lvrmd` — a runnable LVRM gateway daemon.
//!
//! Hosts virtual routers from a small config file and forwards live frames
//! between two attachments, printing per-second statistics. Attachments:
//!
//! * `--self-test` (default): an in-process PF_RING-style ring pair with a
//!   synthetic traffic generator on the far end — runs anywhere;
//! * `--udp <listen-peer-addr>`: a UDP-loopback attachment (the raw-socket
//!   stand-in), for wiring several `lvrmd` instances together.
//!
//! ```text
//! lvrmd [--config <file>] [--duration <secs>] [--rate <fps>] [--self-test]
//!       [--dispatch pinned|replicated]
//!       [--metrics-addr <ip:port>] [--checkpoint-path <file>]
//!       [--checkpoint-interval <secs>]
//!       [--ha-bind <ip:port> --ha-peer <ip:port>] [--ha-priority <1-254>]
//!       [--ha-node-id <n>] [--advert-interval <ms>]
//!       [--shard-id <n> --shards <n>] [--fleet-peer <shard,bind,peer>]...
//! ```
//!
//! `--metrics-addr` (off by default) serves the Prometheus text exposition
//! over a non-blocking listener driven from the same polling loop as the
//! dataplane — `curl http://<addr>/metrics` while the daemon runs.
//!
//! `--checkpoint-path` enables warm restart: the control plane is
//! checkpointed there every `--checkpoint-interval` seconds (default 1)
//! from the lazy reallocation tick, and a daemon started against an
//! existing checkpoint resumes from it — counters, flow affinity and
//! supervisor state survive, under an incremented restore epoch. SIGHUP
//! forces an immediate checkpoint and prints a conservation report.
//!
//! `--ha-bind`/`--ha-peer` pair two daemons into an active/standby set
//! (DESIGN.md §13): VRRP-style adverts elect the higher `--ha-priority`
//! monitor as master, the master streams checkpoint deltas over the same
//! UDP link, and the standby — which does not accept dataplane frames —
//! promotes from its shadow checkpoint within ~3 advert intervals of the
//! master dying. SIGUSR1 on the master performs a graceful handoff
//! (priority-0 resign, sub-advert-interval takeover).
//!
//! `--shard-id`/`--shards` join an N-shard monitor fleet (DESIGN.md §15):
//! every member declares the same VR universe (the config's `vr` lines),
//! serves only the share the rendezvous partition assigns to its shard id,
//! and gossips the directory with each `--fleet-peer <shard>,<bind>,<peer>`
//! over UDP. Frames classified to an unowned VR are shed (counted, never
//! silent). A shard that dies is detected in ~6 advert intervals and its
//! VRs re-home to their rendezvous successors, warm-adopted from the
//! inter-shard snapshot stream. Composes with `--ha-bind/--ha-peer`: a
//! shard may itself be an active/standby pair.
//!
//! Config format (one directive per line, `#` comments):
//!
//! ```text
//! balancer   jsq | rr | random
//! flow-based on | off
//! dispatch   pinned | replicated   # replicated: any-VRI dispatch + LVSU state replication (DESIGN.md §14)
//! allocator  fixed <cores> | dynamic <fps-per-core> | service-rate <bootstrap-fps>
//! queue      lamport | fastforward | mutex | vlink
//! ring-capacity <n>      # shared-ring frames under vlink (0 = auto 4x data queue)
//! batch-size <n>         # frames per ingress/dispatch burst (1 = per-frame)
//! supervision on | off   # respawn crashed/stalled VRIs (off by default)
//! shedding   on | off    # fair per-VR early shedding under overload
//! watermarks <low> <high>     # queue-occupancy pressure thresholds (0..1]
//! drain-deadline-ms <n>       # max drain wait on shrink/shutdown (0 = none)
//! latency-histograms on | off # dispatch→departure histograms (on by default)
//! fault crash <at-ms> <nth>   # inject: crash the nth-spawned VRI at at-ms
//! fault stall <at-ms> <nth>   # inject: wedge the nth-spawned VRI at at-ms
//! fault adapter-crash <at-ms>  # inject: kill the NIC adapter at at-ms
//! fault adapter-stall <at-ms>  # inject: wedge the NIC adapter at at-ms
//! fault adapter-resume <at-ms> # inject: clear an adapter stall at at-ms
//! adapter-failover <n>        # n standby NIC adapters behind the primary
//! vr <name> <sender-cidr> <receiver-cidr> [shed-weight]
//! ```
//!
//! The daemon exits cleanly on SIGINT/SIGTERM (or when `--duration`
//! elapses): ingress quiesces, every VRI drains its queue and retires, and
//! a final report checks the frame-conservation identity.

use std::net::Ipv4Addr;

use lvrm::core::config::{AllocatorKind, BalancerKind};
use lvrm::core::{FaultPlan, FaultyHost};
use lvrm::prelude::*;
use lvrm::router::Route;

#[derive(Debug)]
struct VrDecl {
    name: String,
    sender: (Ipv4Addr, u8),
    receiver: (Ipv4Addr, u8),
    /// Admission weight under overload shedding (`None` = config default).
    weight: Option<f64>,
}

#[derive(Debug)]
struct DaemonConfig {
    lvrm: LvrmConfig,
    vrs: Vec<VrDecl>,
    faults: FaultPlan,
    /// Standby NIC adapters behind the primary (`adapter-failover <n>`).
    standby_adapters: usize,
}

fn parse_cidr(s: &str) -> Result<(Ipv4Addr, u8), String> {
    let (ip, len) = s.split_once('/').ok_or_else(|| format!("{s:?} is not CIDR"))?;
    let ip: Ipv4Addr = ip.parse().map_err(|_| format!("bad address in {s:?}"))?;
    let len: u8 = len
        .parse()
        .ok()
        .filter(|l| *l <= 32)
        .ok_or_else(|| format!("bad prefix length in {s:?}"))?;
    Ok((ip, len))
}

fn parse_config(text: &str) -> Result<DaemonConfig, String> {
    let mut lvrm = LvrmConfig::default();
    let mut vrs = Vec::new();
    let mut faults = FaultPlan::new();
    let mut standby_adapters = 0usize;
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let key = it.next().unwrap();
        let args: Vec<&str> = it.collect();
        let err = |m: &str| format!("config line {}: {m}", no + 1);
        match (key, args.as_slice()) {
            ("balancer", [b]) => {
                lvrm.balancer = match *b {
                    "jsq" => BalancerKind::Jsq,
                    "rr" => BalancerKind::RoundRobin,
                    "random" => BalancerKind::Random,
                    other => return Err(err(&format!("unknown balancer {other:?}"))),
                };
            }
            ("flow-based", [v]) => {
                lvrm.flow_based = match *v {
                    "on" => true,
                    "off" => false,
                    other => return Err(err(&format!("flow-based must be on/off, got {other:?}"))),
                };
            }
            ("dispatch", [m]) => {
                lvrm.dispatch = m.parse::<DispatchMode>().map_err(|e| err(&e.to_string()))?;
            }
            ("allocator", ["fixed", n]) => {
                let cores: usize = n.parse().map_err(|_| err(&format!("bad core count {n:?}")))?;
                lvrm.allocator = AllocatorKind::Fixed { cores };
            }
            ("allocator", ["dynamic", r]) => {
                let rate: f64 = r.parse().map_err(|_| err(&format!("bad rate {r:?}")))?;
                lvrm.allocator = AllocatorKind::DynamicFixed { per_core_rate: rate };
            }
            ("allocator", ["service-rate", r]) => {
                let rate: f64 = r.parse().map_err(|_| err(&format!("bad rate {r:?}")))?;
                lvrm.allocator = AllocatorKind::DynamicServiceRate { bootstrap_rate: rate };
            }
            ("batch-size", [n]) => {
                lvrm.batch_size =
                    n.parse().ok().filter(|b| *b >= 1).ok_or_else(|| {
                        err(&format!("batch-size needs an integer >= 1, got {n:?}"))
                    })?;
            }
            ("supervision", [v]) => {
                lvrm.supervision = match *v {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(err(&format!("supervision must be on/off, got {other:?}")))
                    }
                };
            }
            ("fault", [kind, at_ms]) => {
                let at: u64 = at_ms
                    .parse()
                    .map_err(|_| err(&format!("fault needs a millisecond time, got {at_ms:?}")))?;
                faults = match *kind {
                    "adapter-crash" => faults.crash_adapter_at(at * 1_000_000),
                    "adapter-stall" => faults.stall_adapter_at(at * 1_000_000),
                    "adapter-resume" => faults.resume_adapter_at(at * 1_000_000),
                    other => return Err(err(&format!("unknown adapter fault kind {other:?}"))),
                };
            }
            ("adapter-failover", [n]) => {
                standby_adapters = n
                    .parse()
                    .ok()
                    .filter(|s| *s <= 8)
                    .ok_or_else(|| err(&format!("adapter-failover needs 0..=8, got {n:?}")))?;
            }
            ("fault", [kind, at_ms, nth]) => {
                let at: u64 = at_ms
                    .parse()
                    .map_err(|_| err(&format!("fault needs a millisecond time, got {at_ms:?}")))?;
                let nth: usize = nth
                    .parse()
                    .map_err(|_| err(&format!("fault needs a spawn index, got {nth:?}")))?;
                faults = match *kind {
                    "crash" => faults.crash_at(at * 1_000_000, nth),
                    "stall" => faults.stall_at(at * 1_000_000, nth),
                    other => return Err(err(&format!("unknown fault kind {other:?}"))),
                };
            }
            ("queue", [q]) => {
                lvrm.queue_kind = q.parse::<QueueKind>().map_err(|e| err(&e.to_string()))?;
            }
            ("ring-capacity", [n]) => {
                lvrm.shared_ring_capacity =
                    n.parse().map_err(|_| err(&format!("bad shared ring capacity {n:?}")))?;
            }
            ("shedding", [v]) => {
                lvrm.overload_shedding = match *v {
                    "on" => true,
                    "off" => false,
                    other => return Err(err(&format!("shedding must be on/off, got {other:?}"))),
                };
            }
            ("watermarks", [low, high]) => {
                lvrm.low_watermark =
                    low.parse().map_err(|_| err(&format!("bad low watermark {low:?}")))?;
                lvrm.high_watermark =
                    high.parse().map_err(|_| err(&format!("bad high watermark {high:?}")))?;
            }
            ("drain-deadline-ms", [n]) => {
                let ms: u64 = n.parse().map_err(|_| {
                    err(&format!("drain-deadline-ms needs milliseconds, got {n:?}"))
                })?;
                lvrm.drain_deadline_ns = ms * 1_000_000;
            }
            ("latency-histograms", [v]) => {
                lvrm.latency_histograms = match *v {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(err(&format!(
                            "latency-histograms must be on/off, got {other:?}"
                        )))
                    }
                };
            }
            ("vr", [name, sender, receiver]) | ("vr", [name, sender, receiver, _]) => {
                let weight = match args.get(3) {
                    Some(w) => Some(
                        w.parse::<f64>()
                            .ok()
                            .filter(|w| w.is_finite() && *w > 0.0)
                            .ok_or_else(|| err(&format!("bad shed-weight {w:?}")))?,
                    ),
                    None => None,
                };
                vrs.push(VrDecl {
                    name: name.to_string(),
                    sender: parse_cidr(sender).map_err(|e| err(&e))?,
                    receiver: parse_cidr(receiver).map_err(|e| err(&e))?,
                    weight,
                });
            }
            (other, _) => return Err(err(&format!("unknown or malformed directive {other:?}"))),
        }
    }
    if vrs.is_empty() {
        vrs.push(VrDecl {
            name: "vr0".into(),
            sender: (Ipv4Addr::new(10, 0, 1, 0), 24),
            receiver: (Ipv4Addr::new(10, 0, 2, 0), 24),
            weight: None,
        });
    }
    lvrm.validate().map_err(|e| format!("config: {e}"))?;
    Ok(DaemonConfig { lvrm, vrs, faults, standby_adapters })
}

fn build_router(decl: &VrDecl) -> Box<dyn VirtualRouter> {
    let mut routes = RouteTable::new();
    routes.insert(Route {
        prefix: decl.receiver.0,
        len: decl.receiver.1,
        iface: 1,
        next_hop: None,
    });
    routes.insert(Route { prefix: decl.sender.0, len: decl.sender.1, iface: 0, next_hop: None });
    Box::new(FastVr::new(&decl.name, routes))
}

/// HA pairing options from the command line (present iff `--ha-peer`).
struct HaCli {
    bind: String,
    peer: String,
}

fn run(
    config: DaemonConfig,
    duration_s: u64,
    rate_fps: f64,
    metrics_addr: Option<&str>,
    ha: Option<HaCli>,
    fleet_peers: Vec<lvrm::runtime::FleetPeerSpec>,
) {
    use lvrm::core::{FaultySocket, SocketAdapter, SupervisedAdapter};

    let clock = MonotonicClock::new();
    let n = lvrm::runtime::affinity::available_cores().max(1) as u16;
    let cores = CoreMap::new(
        CoreTopology::single_package(n),
        CoreId(0),
        if n > 1 { AffinityMode::SiblingFirst } else { AffinityMode::Same },
    );
    let batch_size = config.lvrm.batch_size.max(1);
    let drain_deadline_ns = config.lvrm.drain_deadline_ns;
    let mut lvrm = Lvrm::new(config.lvrm, cores, clock.clone());
    // The host is always wrapped for fault injection; an empty plan is free.
    let mut host = FaultyHost::new(
        lvrm::runtime::ThreadHost::new(clock.clone()).with_batch_size(batch_size),
        config.faults.clone(),
    );
    let vr_ids: Vec<VrId> = config
        .vrs
        .iter()
        .map(|d| lvrm.add_vr(&d.name, &[d.sender, d.receiver], build_router(d), &mut host))
        .collect();
    for (d, id) in config.vrs.iter().zip(&vr_ids) {
        if let Some(w) = d.weight {
            lvrm.set_vr_weight(*id, w);
        }
    }
    lvrm::runtime::signal::install_shutdown_handlers();
    lvrm::runtime::signal::install_checkpoint_handler();
    lvrm::runtime::signal::install_handoff_handler();
    if let Some(opts) = ha.as_ref() {
        let link = lvrm::runtime::UdpPeerLink::connect(&opts.bind, &opts.peer)
            .unwrap_or_else(|e| die(&format!("cannot open HA link {:?}: {e}", opts.bind)));
        if !lvrm.attach_ha(Box::new(link)) {
            die("--ha-peer given but the HA config was rejected");
        }
        let hc = lvrm.config().ha.expect("attach_ha succeeded");
        println!(
            "HA: node {} priority {} advertising every {} ms ({} -> {}); starting as backup",
            hc.node_id,
            hc.priority,
            hc.advert_interval_ns / 1_000_000,
            opts.bind,
            opts.peer
        );
    }
    if let Some(sc) = lvrm.config().shard {
        let links = lvrm::runtime::UdpFanout::connect(&fleet_peers)
            .unwrap_or_else(|e| die(&format!("cannot open fleet links: {e}")));
        if !lvrm.attach_fleet(links) {
            die("--shard-id/--shards given but the fleet config was rejected");
        }
        let owned = lvrm.owned_vrs();
        println!(
            "fleet: shard {}/{} serving {owned} of {} declared VRs, advert every {} ms",
            sc.shard_id,
            sc.shards,
            config.vrs.len(),
            sc.advert_interval_ns / 1_000_000
        );
    }
    for (d, id) in config.vrs.iter().zip(&vr_ids) {
        let owned = lvrm.config().shard.is_none() || lvrm.vr_owned_by_name(&d.name);
        println!(
            "hosted {} ({} -> {}), {} VRI(s){}",
            d.name,
            d.sender.0,
            d.receiver.0,
            lvrm.vri_count(*id),
            if owned { "" } else { " [unowned: shedding]" }
        );
    }
    // Warm restart: resume from an existing checkpoint, if one is there.
    let ckpt_path = lvrm.config().checkpoint_path.clone();
    if let Some(path) = ckpt_path.as_ref() {
        if path.exists() {
            match lvrm.restore_from(path, &mut host) {
                Ok(epoch) => println!("restored from {} (epoch {epoch})", path.display()),
                Err(e) => println!("checkpoint rejected ({e}); cold start"),
            }
        } else {
            println!("checkpointing to {} (no prior checkpoint)", path.display());
        }
    }
    let mut metrics = metrics_addr.map(|addr| {
        let srv = lvrm::runtime::MetricsServer::bind(addr)
            .unwrap_or_else(|e| die(&format!("cannot bind metrics endpoint {addr:?}: {e}")));
        println!("metrics: http://{}/metrics", srv.local_addr());
        srv
    });

    // Self-test attachment: a ring pair with a generator thread that plays
    // each VR's sender subnet. The NIC side goes behind the adapter
    // supervisor, wrapped for deterministic fault injection (an empty plan
    // is free); `adapter-failover <n>` adds standby rings to the chain.
    let (primary, mut far_end) = lvrm::runtime::RingAdapter::pair(8192);
    let mut chain: Vec<Box<dyn SocketAdapter>> =
        vec![Box::new(FaultySocket::with_plan(primary, &config.faults))];
    let mut standby_far_ends = Vec::new();
    for _ in 0..config.standby_adapters {
        let (near, far) = lvrm::runtime::RingAdapter::pair(8192);
        chain.push(Box::new(near));
        standby_far_ends.push(far);
    }
    let mut nic = SupervisedAdapter::with_chain(chain, lvrm.config().adapter_supervisor());
    let gen_specs: Vec<(Ipv4Addr, Ipv4Addr)> = config
        .vrs
        .iter()
        .map(|d| {
            let s = d.sender.0.octets();
            let r = d.receiver.0.octets();
            (Ipv4Addr::new(s[0], s[1], s[2], 5), Ipv4Addr::new(r[0], r[1], r[2], 9))
        })
        .collect();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_gen = stop.clone();
    let generator = std::thread::spawn(move || {
        let mut builders: Vec<FrameBuilder> =
            gen_specs.iter().map(|(s, d)| FrameBuilder::new(*s, *d)).collect();
        let per_frame = std::time::Duration::from_nanos((1e9 / rate_fps) as u64);
        let mut next = std::time::Instant::now();
        let mut i = 0usize;
        let mut received_back = 0u64;
        while !stop_gen.load(std::sync::atomic::Ordering::Acquire) {
            if std::time::Instant::now() >= next {
                let n = builders.len();
                let b = &mut builders[i % n];
                let f = b.udp(20_000 + (i % 1000) as u16, 30_000, &[0u8; 26]);
                let _ = far_end.send(f); // ring full = generator outpaced us
                i += 1;
                next += per_frame;
            }
            while far_end.poll().is_ok() {
                received_back += 1;
            }
            // After a failover, egress leaves through a standby ring.
            for standby in standby_far_ends.iter_mut() {
                while standby.poll().is_ok() {
                    received_back += 1;
                }
            }
        }
        (far_end.tx_count(), received_back)
    });

    let t_end = std::time::Instant::now() + std::time::Duration::from_secs(duration_s);
    let mut ingress: Vec<Frame> = Vec::with_capacity(batch_size);
    let mut egress = Vec::new();
    let mut last_out = 0u64;
    while std::time::Instant::now() < t_end && !lvrm::runtime::signal::requested() {
        // Burst dataplane: one poll, one classify/dispatch pass, one send
        // per batch (batch-size 1 degenerates to the per-frame loop). The
        // supervisor absorbs adapter faults: a degraded or dead NIC reads
        // as idle here while reopen/failover runs underneath. An HA standby
        // (or a master still in promotion probation) leaves the NIC alone —
        // frames belong to the accepting master.
        if lvrm.ha_accepting() && nic.poll_batch(&mut ingress, batch_size).unwrap_or(0) > 0 {
            let ts = clock.now_ns();
            for f in ingress.iter_mut() {
                f.ts_ns = ts;
                f.ingress_if = 0;
            }
            lvrm.ingress_batch(&mut ingress, &mut host);
            ingress.clear();
        }
        host.apply(clock.now_ns());
        // Supervisor time: injected adapter faults fire, due reopens run,
        // the egress retry queue flushes.
        nic.tick(clock.now_ns());
        lvrm.process_control();
        lvrm.maybe_reallocate(clock.now_ns(), &mut host);
        egress.clear();
        lvrm.poll_egress(&mut egress);
        // Back out the ring (the self-test peer counts them); refusals are
        // parked in the supervisor's retry queue, not dropped.
        let _ = nic.send_batch(&mut egress);
        // Scrapes are served from the same loop: one non-blocking poll per
        // iteration, rendering the exposition only when a request completed.
        if let Some(srv) = metrics.as_mut() {
            srv.poll(|| lvrm.render_prometheus());
        }
        // SIGUSR1: graceful mastership handoff (priority-0 resign).
        if lvrm::runtime::signal::take_handoff_request() {
            match lvrm.ha_mut() {
                Some(node) => {
                    node.request_handoff(clock.now_ns());
                    println!("SIGUSR1: resigning mastership (handoff to peer)");
                }
                None => println!("SIGUSR1: no HA peer configured"),
            }
        }
        // SIGHUP: checkpoint now and report conservation, without stopping.
        if lvrm::runtime::signal::take_checkpoint_request() {
            match ckpt_path.as_ref() {
                Some(path) => {
                    let ok = lvrm.checkpoint_to(path, clock.now_ns());
                    println!(
                        "SIGHUP: checkpoint {} ({})",
                        path.display(),
                        if ok { "written" } else { "FAILED" }
                    );
                }
                None => println!("SIGHUP: no --checkpoint-path configured"),
            }
            print_conservation(&lvrm.stats());
        }
        // The 1 s reallocation tick leaves a structured one-line summary.
        if let Some(line) = lvrm.take_tick_line() {
            nic.publish(lvrm.metrics());
            let out = lvrm.stats().frames_out;
            match lvrm.ha_role() {
                Some(role) => {
                    println!("{line} out_per_s={} ha={role}", out.saturating_sub(last_out))
                }
                None => println!("{line} out_per_s={}", out.saturating_sub(last_out)),
            }
            last_out = out;
        }
    }
    let interrupted = lvrm::runtime::signal::requested();
    stop.store(true, std::sync::atomic::Ordering::Release);
    let (generated, echoed) = generator.join().expect("generator joins");

    // Graceful drain: ingress is quiesced, every VRI empties its queue and
    // retires; the deadline bounds how long a wedged instance can hold the
    // exit. Egress keeps flowing out the ring the whole time.
    println!("\n{}: draining...", if interrupted { "signal" } else { "duration elapsed" });
    let deadline = clock.now_ns().saturating_add(drain_deadline_ns.max(1_000_000));
    let t_drain_end = std::time::Instant::now()
        + std::time::Duration::from_nanos(drain_deadline_ns + 500_000_000);
    while !lvrm.shutdown(deadline, &mut host) && std::time::Instant::now() < t_drain_end {
        egress.clear();
        lvrm.poll_egress(&mut egress);
        let _ = nic.send_batch(&mut egress);
        nic.tick(clock.now_ns());
        std::hint::spin_loop();
    }
    egress.clear();
    lvrm.poll_egress(&mut egress);
    let _ = nic.send_batch(&mut egress);
    nic.tick(clock.now_ns());
    host.inner.shutdown();
    // A final checkpoint captures the drained state for the next start.
    if let Some(path) = ckpt_path.as_ref() {
        lvrm.checkpoint_to(path, clock.now_ns());
    }
    println!("\nfinal state:");
    for vr in lvrm.snapshot() {
        println!("{vr}");
    }
    print_conservation(&lvrm.stats());
    if nic.reopens + nic.failovers + nic.egress_retries + nic.tx_drops > 0 {
        println!(
            "adapter: reopens {}, failovers {}, egress retries {}, retry-deadline drops {}",
            nic.reopens, nic.failovers, nic.egress_retries, nic.tx_drops
        );
    }
    println!(
        "\nself-test done: generated {generated}, forwarded {}, echoed back to peer {echoed}",
        lvrm.stats().frames_out
    );
}

/// The aggregate frame-conservation identity, as one printed line.
fn print_conservation(s: &LvrmStats) {
    let accounted = s.frames_out
        + s.unclassified
        + s.dispatch_drops
        + s.no_vri_drops
        + s.shrink_lost
        + s.crash_lost
        + s.quarantined_drops
        + s.shed_early;
    println!(
        "conservation: frames_in {} == out {} + unclassified {} + dispatch_drops {} \
         + no_vri {} + shrink_lost {} + crash_lost {} + quarantined {} + shed_early {} = {} [{}]",
        s.frames_in,
        s.frames_out,
        s.unclassified,
        s.dispatch_drops,
        s.no_vri_drops,
        s.shrink_lost,
        s.crash_lost,
        s.quarantined_drops,
        s.shed_early,
        accounted,
        if s.frames_in == accounted { "exact" } else { "DELTA" },
    );
    // Identity (E) only materialises under replicated dispatch; keep the
    // pinned-mode report one line.
    if s.updates_emitted + s.updates_folded + s.updates_lost > 0 {
        println!(
            "replication: updates_emitted {} == folded {} + lost {} = {} [{}]",
            s.updates_emitted,
            s.updates_folded,
            s.updates_lost,
            s.updates_folded + s.updates_lost,
            if s.updates_emitted == s.updates_folded + s.updates_lost { "exact" } else { "DELTA" },
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config_path: Option<String> = None;
    let mut duration_s = 5u64;
    let mut rate_fps = 50_000.0;
    let mut metrics_addr: Option<String> = None;
    let mut dispatch: Option<DispatchMode> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut checkpoint_interval_s: Option<u64> = None;
    let mut ha_bind: Option<String> = None;
    let mut ha_peer: Option<String> = None;
    let mut ha_priority: Option<u8> = None;
    let mut ha_node_id: Option<u64> = None;
    let mut advert_interval_ms: Option<u64> = None;
    let mut shard_id: Option<u32> = None;
    let mut shards: Option<u32> = None;
    let mut fleet_peers: Vec<lvrm::runtime::FleetPeerSpec> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--config" => {
                config_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--duration" => {
                duration_s = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--duration needs seconds"));
                i += 2;
            }
            "--rate" => {
                rate_fps = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--rate needs fps"));
                i += 2;
            }
            "--dispatch" => {
                dispatch = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse::<DispatchMode>().ok())
                        .unwrap_or_else(|| die("--dispatch needs pinned|replicated")),
                );
                i += 2;
            }
            "--metrics-addr" => {
                metrics_addr = Some(
                    args.get(i + 1).cloned().unwrap_or_else(|| die("--metrics-addr needs ip:port")),
                );
                i += 2;
            }
            "--checkpoint-path" => {
                checkpoint_path = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| die("--checkpoint-path needs a file")),
                );
                i += 2;
            }
            "--checkpoint-interval" => {
                checkpoint_interval_s = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|s| *s > 0)
                        .unwrap_or_else(|| die("--checkpoint-interval needs whole seconds >= 1")),
                );
                i += 2;
            }
            "--ha-bind" => {
                ha_bind = Some(
                    args.get(i + 1).cloned().unwrap_or_else(|| die("--ha-bind needs ip:port")),
                );
                i += 2;
            }
            "--ha-peer" => {
                ha_peer = Some(
                    args.get(i + 1).cloned().unwrap_or_else(|| die("--ha-peer needs ip:port")),
                );
                i += 2;
            }
            "--ha-priority" => {
                ha_priority = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|p| (1..=254).contains(p))
                        .unwrap_or_else(|| die("--ha-priority needs 1..=254")),
                );
                i += 2;
            }
            "--ha-node-id" => {
                ha_node_id = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--ha-node-id needs an integer")),
                );
                i += 2;
            }
            "--advert-interval" => {
                advert_interval_ms = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|ms| *ms > 0)
                        .unwrap_or_else(|| die("--advert-interval needs whole milliseconds >= 1")),
                );
                i += 2;
            }
            "--shard-id" => {
                shard_id = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--shard-id needs an integer")),
                );
                i += 2;
            }
            "--shards" => {
                shards = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|n| *n >= 1)
                        .unwrap_or_else(|| die("--shards needs an integer >= 1")),
                );
                i += 2;
            }
            "--fleet-peer" => {
                fleet_peers.push(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--fleet-peer needs <shard>,<bind>,<peer>")),
                );
                i += 2;
            }
            "--self-test" => i += 1, // the default; accepted for clarity
            "--help" | "-h" => {
                println!(
                    "usage: lvrmd [--config FILE] [--duration SECS] [--rate FPS] [--self-test] \
                     [--dispatch pinned|replicated] \
                     [--metrics-addr IP:PORT] [--checkpoint-path FILE] \
                     [--checkpoint-interval SECS] [--ha-bind IP:PORT --ha-peer IP:PORT] \
                     [--ha-priority 1-254] [--ha-node-id N] [--advert-interval MS] \
                     [--shard-id N --shards N] [--fleet-peer SHARD,BIND,PEER]..."
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    let text = match &config_path {
        Some(p) => {
            std::fs::read_to_string(p).unwrap_or_else(|e| die(&format!("cannot read {p:?}: {e}")))
        }
        None => String::new(),
    };
    let mut config = parse_config(&text).unwrap_or_else(|e| die(&e));
    if let Some(mode) = dispatch {
        config.lvrm.dispatch = mode;
        config.lvrm.validate().unwrap_or_else(|e| die(&format!("--dispatch: {e}")));
    }
    if let Some(p) = checkpoint_path {
        config.lvrm.checkpoint_path = Some(p.into());
    }
    if let Some(s) = checkpoint_interval_s {
        config.lvrm.checkpoint_interval_ns = s * 1_000_000_000;
    }
    let ha = match (ha_bind, ha_peer) {
        (Some(bind), Some(peer)) => {
            let mut hc = lvrm::core::HaConfig::default();
            if let Some(p) = ha_priority {
                hc.priority = p;
            }
            if let Some(id) = ha_node_id {
                hc.node_id = id;
            }
            if let Some(ms) = advert_interval_ms {
                hc.advert_interval_ns = ms * 1_000_000;
            }
            config.lvrm.ha = Some(hc);
            config.lvrm.validate().unwrap_or_else(|e| die(&format!("HA config: {e}")));
            Some(HaCli { bind, peer })
        }
        (None, None) => {
            if ha_priority.is_some() || ha_node_id.is_some() || advert_interval_ms.is_some() {
                die("--ha-priority/--ha-node-id/--advert-interval need --ha-bind and --ha-peer");
            }
            None
        }
        _ => die("--ha-bind and --ha-peer must be given together"),
    };
    match (shard_id, shards) {
        (Some(id), Some(n)) => {
            if id >= n {
                die("--shard-id must be < --shards");
            }
            for spec in &fleet_peers {
                if spec.shard == id || spec.shard >= n {
                    die("--fleet-peer shard ids must name *other* members of the fleet");
                }
            }
            config.lvrm.shard =
                Some(lvrm::core::ShardConfig { shard_id: id, shards: n, ..Default::default() });
            config.lvrm.validate().unwrap_or_else(|e| die(&format!("fleet config: {e}")));
        }
        (None, None) => {
            if !fleet_peers.is_empty() {
                die("--fleet-peer needs --shard-id and --shards");
            }
        }
        _ => die("--shard-id and --shards must be given together"),
    }
    run(config, duration_s, rate_fps, metrics_addr.as_deref(), ha, fleet_peers);
}

fn die(msg: &str) -> ! {
    eprintln!("lvrmd: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_config_defaults_one_vr() {
        let c = parse_config("").unwrap();
        assert_eq!(c.vrs.len(), 1);
        assert_eq!(c.lvrm.balancer, BalancerKind::Jsq);
    }

    #[test]
    fn full_config_parses() {
        let c = parse_config(
            "# campus gateway\n\
             balancer rr\n\
             flow-based on\n\
             allocator dynamic 60000\n\
             queue fastforward\n\
             batch-size 32\n\
             vr cs   10.0.1.0/24 10.0.2.0/24\n\
             vr math 10.9.1.0/24 10.9.2.0/24\n",
        )
        .unwrap();
        assert_eq!(c.lvrm.balancer, BalancerKind::RoundRobin);
        assert!(c.lvrm.flow_based);
        assert_eq!(c.lvrm.queue_kind, QueueKind::FastForward);
        assert_eq!(c.lvrm.batch_size, 32);
        assert!(
            matches!(c.lvrm.allocator, AllocatorKind::DynamicFixed { per_core_rate } if per_core_rate == 60_000.0)
        );
        assert_eq!(c.vrs.len(), 2);
        assert_eq!(c.vrs[1].name, "math");
        assert_eq!(c.vrs[1].sender.0, Ipv4Addr::new(10, 9, 1, 0));
    }

    #[test]
    fn dispatch_directive_parses() {
        let c = parse_config("dispatch replicated\n").unwrap();
        assert_eq!(c.lvrm.dispatch, DispatchMode::Replicated);
        let c = parse_config("dispatch pinned\n").unwrap();
        assert_eq!(c.lvrm.dispatch, DispatchMode::Pinned);
        assert_eq!(parse_config("").unwrap().lvrm.dispatch, DispatchMode::Pinned);
        assert!(parse_config("dispatch sideways\n").is_err());
        // Semantic clash: replicated dispatch defeats flow affinity.
        let e = parse_config("flow-based on\ndispatch replicated\n").unwrap_err();
        assert!(e.contains("flow"), "{e}");
    }

    #[test]
    fn bad_directives_error_with_line_numbers() {
        let e = parse_config("balancer jsq\nallocator warp 9\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        assert!(parse_config("vr a 10.0.1.0 10.0.2.0/24\n").is_err());
        assert!(parse_config("flow-based maybe\n").is_err());
        assert!(parse_config("batch-size 0\n").is_err());
        assert!(parse_config("batch-size many\n").is_err());
        assert!(parse_config("supervision maybe\n").is_err());
        assert!(parse_config("fault melt 100 0\n").is_err());
        assert!(parse_config("fault crash soon 0\n").is_err());
    }

    #[test]
    fn overload_directives_parse() {
        let c = parse_config(
            "shedding on\n\
             watermarks 0.2 0.8\n\
             drain-deadline-ms 250\n\
             vr cs   10.0.1.0/24 10.0.2.0/24 4\n\
             vr math 10.9.1.0/24 10.9.2.0/24\n",
        )
        .unwrap();
        assert!(c.lvrm.overload_shedding);
        assert_eq!(c.lvrm.low_watermark, 0.2);
        assert_eq!(c.lvrm.high_watermark, 0.8);
        assert_eq!(c.lvrm.drain_deadline_ns, 250_000_000);
        assert_eq!(c.vrs[0].weight, Some(4.0));
        assert_eq!(c.vrs[1].weight, None);
        assert!(parse_config("shedding maybe\n").is_err());
        assert!(parse_config("watermarks 0.5\n").is_err());
        assert!(parse_config("drain-deadline-ms soon\n").is_err());
        assert!(parse_config("latency-histograms maybe\n").is_err());
        assert!(!parse_config("latency-histograms off\n").unwrap().lvrm.latency_histograms);
        assert!(parse_config("").unwrap().lvrm.latency_histograms, "on by default");
        assert!(parse_config("vr a 10.0.1.0/24 10.0.2.0/24 -1\n").is_err());
    }

    #[test]
    fn invalid_config_is_rejected_by_validate() {
        // Parses directive-wise but fails semantic validation: watermarks
        // out of order.
        let e = parse_config("watermarks 0.9 0.3\n").unwrap_err();
        assert!(e.contains("watermark"), "{e}");
        let e = parse_config("batch-size 1\nwatermarks 0 0.5\n").unwrap_err();
        assert!(e.contains("watermark"), "{e}");
    }

    #[test]
    fn supervision_and_fault_directives_parse() {
        use lvrm::core::fault::FaultKind;
        let c = parse_config(
            "supervision on\n\
             fault crash 1500 0\n\
             fault stall 2000 1\n",
        )
        .unwrap();
        assert!(c.lvrm.supervision);
        let evs = c.faults.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].at_ns, 1_500_000_000);
        assert_eq!(evs[0].kind, FaultKind::Crash { nth_spawn: 0 });
        assert_eq!(evs[1].kind, FaultKind::Stall { nth_spawn: 1 });
        assert!(!parse_config("supervision off\n").unwrap().lvrm.supervision);
    }

    #[test]
    fn adapter_fault_and_failover_directives_parse() {
        use lvrm::core::fault::AdapterFaultKind;
        let c = parse_config(
            "adapter-failover 2\n\
             fault adapter-crash 500\n\
             fault adapter-stall 900\n\
             fault adapter-resume 1200\n",
        )
        .unwrap();
        assert_eq!(c.standby_adapters, 2);
        let evs = c.faults.adapter_events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].at_ns, 500_000_000);
        assert_eq!(evs[0].kind, AdapterFaultKind::Crash);
        assert_eq!(evs[1].kind, AdapterFaultKind::Stall);
        assert_eq!(evs[2].kind, AdapterFaultKind::Resume);
        assert_eq!(parse_config("").unwrap().standby_adapters, 0);
        assert!(parse_config("adapter-failover many\n").is_err());
        assert!(parse_config("adapter-failover 99\n").is_err());
        assert!(parse_config("fault adapter-melt 100\n").is_err());
        assert!(parse_config("fault adapter-crash soon\n").is_err());
    }
}
